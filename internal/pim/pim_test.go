package pim

import (
	"sync"
	"testing"
)

func TestRoundMaxSemantics(t *testing.T) {
	m := NewMachine(4, 1024)
	m.RunRound(func(r *Round) {
		r.OnModules(func(ctx *ModuleCtx) {
			// Module i does i*10 work and moves i*5 words.
			ctx.Work(int64(ctx.ID() * 10))
			ctx.Transfer(int64(ctx.ID() * 5))
		})
	})
	st := m.Stats()
	if st.PIMWork != 60 {
		t.Fatalf("PIMWork %d want 60", st.PIMWork)
	}
	if st.PIMTime != 30 {
		t.Fatalf("PIMTime %d want 30 (max module)", st.PIMTime)
	}
	if st.Communication != 30 {
		t.Fatalf("Communication %d want 30", st.Communication)
	}
	if st.CommTime != 15 {
		t.Fatalf("CommTime %d want 15 (max module)", st.CommTime)
	}
	if st.Rounds != 1 {
		t.Fatalf("Rounds %d", st.Rounds)
	}
}

func TestRoundsAccumulate(t *testing.T) {
	m := NewMachine(2, 16)
	for i := 0; i < 3; i++ {
		m.RunRound(func(r *Round) {
			r.Transfer(0, 7)
		})
	}
	st := m.Stats()
	if st.Rounds != 3 || st.CommTime != 21 || st.Communication != 21 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCPUPhaseNoRound(t *testing.T) {
	m := NewMachine(2, 16)
	m.CPUPhase(100, 10)
	st := m.Stats()
	if st.CPUWork != 100 || st.CPUSpan != 10 || st.Rounds != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestModuleWorkAttribution(t *testing.T) {
	m := NewMachine(3, 16)
	m.RunRound(func(r *Round) {
		r.ModuleWork(2, 42)
	})
	work, _ := m.ModuleLoads()
	if work[2] != 42 || work[0] != 0 {
		t.Fatalf("loads %v", work)
	}
	if m.Stats().PIMTime != 42 {
		t.Fatalf("PIMTime %d", m.Stats().PIMTime)
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{CPUWork: 10, Communication: 5, Rounds: 2}
	b := Stats{CPUWork: 4, Communication: 1, Rounds: 1}
	d := a.Sub(b)
	if d.CPUWork != 6 || d.Communication != 4 || d.Rounds != 1 {
		t.Fatalf("sub %+v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Fatalf("add %+v", s)
	}
	if a.TotalWork() != 10 {
		t.Fatalf("total %d", a.TotalWork())
	}
}

func TestResetStats(t *testing.T) {
	m := NewMachine(2, 16)
	m.CPUPhase(5, 5)
	m.RunRound(func(r *Round) { r.Transfer(1, 3); r.ModuleWork(1, 2) })
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatalf("reset left %+v", m.Stats())
	}
	w, c := m.ModuleLoads()
	if w[1] != 0 || c[1] != 0 {
		t.Fatal("module loads not reset")
	}
}

func TestSnapshotStats(t *testing.T) {
	m := NewMachine(3, 16)
	m.RunRound(func(r *Round) {
		r.Transfer(1, 7)
		r.ModuleWork(2, 4)
	})
	pre := m.SnapshotStats()
	if pre.Stats != m.Stats() {
		t.Fatalf("snapshot stats %+v vs %+v", pre.Stats, m.Stats())
	}
	if pre.ModuleComm[1] != 7 || pre.ModuleWork[2] != 4 || pre.ModuleComm[0] != 0 {
		t.Fatalf("snapshot vectors %v %v", pre.ModuleWork, pre.ModuleComm)
	}
	m.RunRound(func(r *Round) {
		r.Transfer(1, 3)
		r.ModuleWork(0, 5)
	})
	d := m.SnapshotStats().Sub(pre)
	if d.Stats.Communication != 3 || d.Stats.Rounds != 1 {
		t.Fatalf("delta stats %+v", d.Stats)
	}
	if d.ModuleComm[1] != 3 || d.ModuleWork[0] != 5 || d.ModuleWork[2] != 0 {
		t.Fatalf("delta vectors %v %v", d.ModuleWork, d.ModuleComm)
	}
	// The snapshot is a copy: further metering must not alter it.
	if pre.ModuleComm[1] != 7 {
		t.Fatal("snapshot aliases live meters")
	}
}

func TestHashRangeAndSpread(t *testing.T) {
	m := NewMachine(16, 16)
	counts := make([]int, 16)
	for i := uint64(0); i < 16000; i++ {
		h := m.Hash(i)
		if h < 0 || h >= 16 {
			t.Fatalf("hash out of range: %d", h)
		}
		counts[h]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("module %d got %d of 16000 (poor spread)", i, c)
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	diff := 0
	const trials = 1000
	for i := uint64(0); i < trials; i++ {
		a := Mix64(i)
		b := Mix64(i ^ 1)
		x := a ^ b
		for x != 0 {
			diff++
			x &= x - 1
		}
	}
	avg := float64(diff) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %g bits", avg)
	}
}

func TestMaxLoadRatio(t *testing.T) {
	if MaxLoadRatio([]int64{0, 0}) != 0 {
		t.Fatal("zero vector ratio")
	}
	if r := MaxLoadRatio([]int64{10, 10, 10, 10}); r != 1 {
		t.Fatalf("uniform ratio %g", r)
	}
	if r := MaxLoadRatio([]int64{40, 0, 0, 0}); r != 4 {
		t.Fatalf("concentrated ratio %g", r)
	}
}

func TestOnModulesConcurrentSafety(t *testing.T) {
	m := NewMachine(8, 16)
	var mu sync.Mutex
	seen := map[int]bool{}
	m.RunRound(func(r *Round) {
		r.OnModules(func(ctx *ModuleCtx) {
			mu.Lock()
			seen[ctx.ID()] = true
			mu.Unlock()
			ctx.Work(1)
		})
	})
	if len(seen) != 8 {
		t.Fatalf("only %d modules ran", len(seen))
	}
}

func TestOnModuleSubset(t *testing.T) {
	m := NewMachine(8, 16)
	m.RunRound(func(r *Round) {
		r.OnModuleSubset([]int{1, 5}, func(ctx *ModuleCtx) {
			ctx.Work(int64(ctx.ID()))
		})
	})
	work, _ := m.ModuleLoads()
	if work[1] != 1 || work[5] != 5 || work[0] != 0 {
		t.Fatalf("loads %v", work)
	}
}

func TestFinishIdempotent(t *testing.T) {
	m := NewMachine(2, 16)
	r := m.BeginRound()
	r.Transfer(0, 5)
	r.Finish()
	r.Finish()
	if m.Stats().Rounds != 1 || m.Stats().CommTime != 5 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

func TestRoundLawExtraRounds(t *testing.T) {
	// A logical round moving more words than the cache holds costs extra
	// BSP rounds (the Ω(c/M + s) law): 10 words through a 4-word cache is
	// 1 + 10/4 = 3 rounds.
	m := NewMachine(2, 4)
	m.RunRound(func(r *Round) {
		r.Transfer(0, 6)
		r.Transfer(1, 4)
	})
	if got := m.Stats().Rounds; got != 3 {
		t.Fatalf("rounds %d want 3", got)
	}
	// A small round is one round.
	m.ResetStats()
	m.RunRound(func(r *Round) { r.Transfer(0, 3) })
	if got := m.Stats().Rounds; got != 1 {
		t.Fatalf("rounds %d want 1", got)
	}
}

func TestNewMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(0, 16)
}
