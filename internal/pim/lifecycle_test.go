package pim

import (
	"sync"
	"testing"
)

// recordingObserver collects every emitted RoundRecord, for lifecycle tests.
type recordingObserver struct {
	mu   sync.Mutex
	recs []RoundRecord
}

func (o *recordingObserver) ObserveRound(rec RoundRecord) {
	o.mu.Lock()
	o.recs = append(o.recs, rec)
	o.mu.Unlock()
}

func (o *recordingObserver) records() []RoundRecord {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]RoundRecord(nil), o.recs...)
}

func TestObserverRecordFields(t *testing.T) {
	obs := &recordingObserver{}
	m := NewMachine(4, 1024)
	m.SetObserver(obs)

	pop := m.PushLabel("test/scope")
	m.RunRound(func(r *Round) {
		r.Label("round:site")
		r.CPUWork(9)
		r.CPUSpan(3)
		r.OnModules(func(ctx *ModuleCtx) {
			ctx.Work(int64(ctx.ID() * 10)) // module 3 is the work straggler
			ctx.Transfer(int64(ctx.ID() * 5))
		})
		r.Transfer(1, 100) // push module 1 to the comm straggler spot
	})
	pop()

	recs := obs.records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Label != "test/scope/round:site" {
		t.Fatalf("label %q", rec.Label)
	}
	if rec.CPUWork != 9 || rec.CPUSpan != 3 {
		t.Fatalf("cpu %d/%d", rec.CPUWork, rec.CPUSpan)
	}
	wantWork := []int64{0, 10, 20, 30}
	wantComm := []int64{0, 105, 10, 15}
	for i := range wantWork {
		if rec.ModWork[i] != wantWork[i] || rec.ModComm[i] != wantComm[i] {
			t.Fatalf("vectors %v %v", rec.ModWork, rec.ModComm)
		}
	}
	if rec.TotalWork != 60 || rec.MaxWork != 30 || rec.StragglerWork != 3 {
		t.Fatalf("work totals %d/%d straggler %d", rec.TotalWork, rec.MaxWork, rec.StragglerWork)
	}
	if rec.TotalComm != 130 || rec.MaxComm != 105 || rec.StragglerComm != 1 {
		t.Fatalf("comm totals %d/%d straggler %d", rec.TotalComm, rec.MaxComm, rec.StragglerComm)
	}
	if rec.Rounds != 1 {
		t.Fatalf("rounds %d", rec.Rounds)
	}
	// The record must agree with the machine meters it was folded into.
	st := m.Stats()
	if rec.MaxWork != st.PIMTime || rec.MaxComm != st.CommTime || rec.TotalComm != st.Communication {
		t.Fatalf("record diverges from meters: %+v vs %s", rec, st)
	}
}

func TestObserverDoubleFinishEmitsOnce(t *testing.T) {
	obs := &recordingObserver{}
	m := NewMachine(2, 16)
	m.SetObserver(obs)
	r := m.BeginRound()
	r.Transfer(0, 5)
	r.Finish()
	r.Finish()
	if got := len(obs.records()); got != 1 {
		t.Fatalf("double Finish emitted %d records, want 1", got)
	}
	if st := m.Stats(); st.Rounds != 1 || st.CommTime != 5 {
		t.Fatalf("double Finish double-counted: %s", st)
	}
}

func TestObserverZeroWorkRound(t *testing.T) {
	obs := &recordingObserver{}
	m := NewMachine(3, 16)
	m.SetObserver(obs)
	pre := m.Stats()
	m.RunRound(func(r *Round) { r.Label("empty") })
	d := m.Stats().Sub(pre)
	// A zero-work round folds into the meters as pure round count: no PIM
	// time, no comm time, exactly one BSP round.
	if d.PIMTime != 0 || d.CommTime != 0 || d.PIMWork != 0 || d.Communication != 0 {
		t.Fatalf("zero-work round charged cost: %s", d)
	}
	if d.Rounds != 1 {
		t.Fatalf("rounds delta %d", d.Rounds)
	}
	recs := obs.records()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	rec := recs[0]
	if rec.MaxWork != 0 || rec.MaxComm != 0 || rec.StragglerWork != -1 || rec.StragglerComm != -1 {
		t.Fatalf("zero-work record %+v", rec)
	}
	if rec.WorkImbalance() != 0 || rec.CommImbalance() != 0 {
		t.Fatalf("zero-work imbalance %g/%g", rec.WorkImbalance(), rec.CommImbalance())
	}
}

func TestObserverRoundLawInRecord(t *testing.T) {
	obs := &recordingObserver{}
	m := NewMachine(2, 4)
	m.SetObserver(obs)
	m.RunRound(func(r *Round) {
		r.Transfer(0, 6)
		r.Transfer(1, 4)
	})
	recs := obs.records()
	if len(recs) != 1 || recs[0].Rounds != 3 {
		t.Fatalf("cache-overflow record %+v", recs)
	}
	if m.Stats().Rounds != 3 {
		t.Fatalf("machine rounds %d", m.Stats().Rounds)
	}
}

func TestSetObserverDetach(t *testing.T) {
	obs := &recordingObserver{}
	m := NewMachine(2, 16)
	m.SetObserver(obs)
	m.RunRound(func(r *Round) { r.Transfer(0, 1) })
	m.SetObserver(nil)
	if m.Observer() != nil {
		t.Fatal("Observer() non-nil after detach")
	}
	m.RunRound(func(r *Round) { r.Transfer(0, 1) })
	if got := len(obs.records()); got != 1 {
		t.Fatalf("detached machine still emitted: %d records", got)
	}
}

func TestSetDefaultObserver(t *testing.T) {
	obs := &recordingObserver{}
	SetDefaultObserver(obs)
	defer SetDefaultObserver(nil)
	m := NewMachine(2, 16)
	m.RunRound(func(r *Round) { r.Label("default"); r.Transfer(1, 2) })
	recs := obs.records()
	if len(recs) != 1 || recs[0].Label != "default" {
		t.Fatalf("default observer records %+v", recs)
	}
	SetDefaultObserver(nil)
	m2 := NewMachine(2, 16)
	m2.RunRound(func(r *Round) { r.Transfer(1, 2) })
	if got := len(obs.records()); got != 1 {
		t.Fatalf("cleared default still observed: %d records", got)
	}
	// Existing machines keep their observer until told otherwise.
	m.RunRound(func(r *Round) { r.Transfer(0, 1) })
	if got := len(obs.records()); got != 2 {
		t.Fatalf("existing machine lost its observer: %d records", got)
	}
}

func TestPushLabelNesting(t *testing.T) {
	obs := &recordingObserver{}
	m := NewMachine(2, 16)
	m.SetObserver(obs)
	popA := m.PushLabel("a")
	popB := m.PushLabel("b")
	m.RunRound(func(r *Round) { r.Transfer(0, 1) }) // prefix only, no site label
	popB()
	m.RunRound(func(r *Round) { r.Label("site"); r.Transfer(0, 1) })
	popA()
	m.RunRound(func(r *Round) { r.Transfer(0, 1) })
	recs := obs.records()
	want := []string{"a/b", "a/site", ""}
	for i, rec := range recs {
		if rec.Label != want[i] {
			t.Fatalf("record %d label %q want %q", i, rec.Label, want[i])
		}
	}
}

func TestObserverRecordIsACopy(t *testing.T) {
	obs := &recordingObserver{}
	m := NewMachine(2, 16)
	m.SetObserver(obs)
	m.RunRound(func(r *Round) { r.ModuleWork(0, 7) })
	rec := obs.records()[0]
	rec.ModWork[0] = 999 // mutating the handed-over slice must be safe
	m.RunRound(func(r *Round) { r.ModuleWork(0, 1) })
	if got := obs.records()[1].ModWork[0]; got != 1 {
		t.Fatalf("records alias shared storage: %d", got)
	}
}

func TestHashSpreadNonPowerOfTwo(t *testing.T) {
	// The modulo reduction must stay near-uniform for a module count that
	// does not divide 2^64 — the balls-into-bins argument assumes it.
	m := NewMachine(13, 16)
	counts := make([]int, 13)
	const n = 26000
	for i := uint64(0); i < n; i++ {
		counts[m.Hash(i*0x51f1)]++
	}
	want := n / 13
	for i, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Fatalf("module %d got %d of %d (poor spread for P=13)", i, c, n)
		}
	}
}
