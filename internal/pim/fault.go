// Fault model for the PIM machine.
//
// The paper's model assumes P modules that never fail and BSP rounds that
// always complete. A production PIM deployment does not get that luxury:
// modules crash mid-round, rounds stall on slow modules, and off-chip sends
// fail transiently (the UPMEM methodology literature calls out module
// failure and load imbalance as first-class concerns). This file extends
// the simulator with exactly those faults, under two rules:
//
//  1. Determinism. Faults are injected by an Injector keyed on the round
//     sequence number, the module id, and the retry attempt — never on wall
//     time — so a seeded fault plan produces an identical fault schedule,
//     identical metering, and identical results on every run.
//  2. Containment. A faulting module program must never kill the process.
//     A panic in a module goroutine is unrecoverable in plain Go (recover
//     only works on the panicking goroutine); the machine therefore wraps
//     every module program and re-raises the first unresolved fault as a
//     typed panic *on the goroutine driving the round*, where callers (the
//     fault.Supervisor, the serving layer) can recover it.
//
// Recovery composes through RecoveryHandler: when an injected crash or
// stall is contained, the machine hands the fault to the registered handler
// on the faulting module's goroutine. The handler (fault.Supervisor)
// rebuilds the module's shard from host-side authoritative state — metered
// through the normal pim counters, in rounds of its own — and returns true
// to retry the failed module program in place. The crashed attempt metered
// nothing (the program never started), so the retried round's accounting
// stays deterministic.
package pim

import (
	"fmt"
	"time"
)

// FaultKind classifies a contained module fault.
type FaultKind int

const (
	// FaultCrash is an injected module crash: the module's program did not
	// run and its (simulated) memory-resident shard is lost.
	FaultCrash FaultKind = iota
	// FaultStall is an injected stall that met or exceeded the machine's
	// round deadline; the module's program did not run, but no state was
	// lost (retry needs no rebuild).
	FaultStall
	// FaultPanic is a real panic recovered from a module program (a bug,
	// not an injection). It is never auto-retried: the program may have
	// had partial side effects.
	FaultPanic
	// FaultSend is a transient send failure that persisted past the
	// machine's retry cap.
	FaultSend
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultStall:
		return "stall"
	case FaultPanic:
		return "panic"
	case FaultSend:
		return "send"
	}
	return "unknown"
}

// ModuleFault is the typed, contained form of a module failure. It is
// raised as a panic value on the goroutine driving the round (never left to
// kill a module goroutine) when no recovery handler resolves it.
type ModuleFault struct {
	// Kind classifies the fault.
	Kind FaultKind
	// Module is the faulting module id.
	Module int
	// Round is the machine round sequence number (Machine.RoundSeq order)
	// the fault occurred in.
	Round int64
	// Attempt is the retry attempt the fault occurred on (0 = first try).
	Attempt int
	// Injected is true for injector-driven faults, false for real panics.
	Injected bool
	// Reason is the recovered panic value for FaultPanic faults.
	Reason any
	// Stack is the faulting goroutine's stack for FaultPanic faults.
	Stack []byte
}

func (f *ModuleFault) Error() string {
	if f.Kind == FaultPanic {
		return fmt.Sprintf("pim: module %d panicked in round %d: %v", f.Module, f.Round, f.Reason)
	}
	return fmt.Sprintf("pim: module %d %s fault in round %d (attempt %d)", f.Module, f.Kind, f.Round, f.Attempt)
}

// RoundTimeout is raised (as a panic on the round-driving goroutine) when a
// round's module programs do not all finish within the machine's round
// deadline. The stalled goroutines are abandoned: they may still complete
// in the background and their metering lands on the machine totals, so a
// timed-out round's accounting is best-effort (the recovery path re-meters
// what matters). Prefer injected stalls, which are resolved
// deterministically before the program runs.
type RoundTimeout struct {
	// Round is the machine round sequence number.
	Round int64
	// Deadline is the configured per-round deadline that expired.
	Deadline time.Duration
	// Stragglers lists the module ids that had not finished at the
	// deadline.
	Stragglers []int
}

func (e *RoundTimeout) Error() string {
	return fmt.Sprintf("pim: round %d exceeded deadline %v (stragglers %v)", e.Round, e.Deadline, e.Stragglers)
}

// Action is an Injector's decision for one (round, module, attempt) site.
// The zero Action is "run normally".
type Action struct {
	// Crash simulates a module crash: the program does not run and the
	// module's shard is considered lost.
	Crash bool
	// Stall delays the module's program by this much. A stall that meets or
	// exceeds the machine's round deadline is escalated to a FaultStall
	// without running the program (deterministically — no real deadline
	// race); a shorter stall sleeps, showing up as wall-clock straggling in
	// traces but metering nothing.
	Stall time.Duration
}

// Injector decides fault injection for a machine. Implementations must be
// pure functions of their own configuration and the (round, module,
// attempt) coordinates — in particular independent of wall time — so that
// runs are reproducible. Methods are called concurrently from module
// goroutines.
type Injector interface {
	// ModuleAction is consulted before running module mod's program in the
	// given round; attempt counts recovery retries of that program.
	ModuleAction(round int64, mod, attempt int) Action
	// SendOK reports whether the attempt-th try of a Transfer touching mod
	// in the given round succeeds. Each failed try meters the transferred
	// words again (the failed send occupied the off-chip channel) before
	// the machine retries.
	SendOK(round int64, mod, attempt int) bool
}

// RecoveryHandler resolves contained module faults. HandleModuleFault runs
// on the faulting module's goroutine, mid-round, while sibling module
// programs continue; it may run rounds of its own on the machine (fault
// injection is suppressed for those). Return true to retry the faulted
// module's program, false to escalate the fault as a typed panic on the
// round's driving goroutine. Only injected faults (FaultCrash, FaultStall)
// are offered for recovery; real panics escalate directly.
type RecoveryHandler interface {
	HandleModuleFault(f *ModuleFault) bool
}

// maxSendAttempts bounds in-round retries of a transiently failing send
// before the machine escalates to a FaultSend module fault.
const maxSendAttempts = 16

// injHolder / recHolder box interfaces for atomic.Pointer storage.
type injHolder struct{ inj Injector }
type recHolder struct{ h RecoveryHandler }

// SetInjector installs inj as the machine's fault injector (nil disables
// injection). Rounds begun while a recovery handler is running are never
// injected, so recovery cannot fault recursively.
func (m *Machine) SetInjector(inj Injector) {
	if inj == nil {
		m.inj.Store(nil)
		return
	}
	m.inj.Store(&injHolder{inj: inj})
}

// Injector returns the machine's current fault injector, or nil.
func (m *Machine) Injector() Injector {
	if h := m.inj.Load(); h != nil {
		return h.inj
	}
	return nil
}

// SetRecoveryHandler installs h as the machine's recovery handler (nil
// disables inline recovery: contained faults escalate as typed panics).
func (m *Machine) SetRecoveryHandler(h RecoveryHandler) {
	if h == nil {
		m.rec.Store(nil)
		return
	}
	m.rec.Store(&recHolder{h: h})
}

// SetRoundDeadline bounds how long one round's module programs may run
// before the round is abandoned with a RoundTimeout (0, the default,
// disables the deadline). Injected stalls meeting the deadline are
// escalated deterministically without sleeping.
func (m *Machine) SetRoundDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.deadline.Store(int64(d))
}

// RoundDeadline returns the configured per-round deadline (0 = none).
func (m *Machine) RoundDeadline() time.Duration {
	return time.Duration(m.deadline.Load())
}

// RoundSeq returns the sequence number of the most recently begun round.
// Fault plans target rounds in this numbering.
func (m *Machine) RoundSeq() int64 { return m.seq.Load() }

// ContainedFaults counts module faults the machine contained (resolved by
// the recovery handler or escalated as typed panics) since construction.
func (m *Machine) ContainedFaults() int64 { return m.containedFaults.Load() }

// SendRetries counts transient send failures re-tried by Transfer since
// construction. Each retry metered its words again.
func (m *Machine) SendRetries() int64 { return m.sendRetries.Load() }

// handleFault offers a contained injected fault to the recovery handler,
// suppressing injection for any rounds the handler runs. It reports whether
// the faulted module program should be retried.
func (m *Machine) handleFault(f *ModuleFault) bool {
	h := m.rec.Load()
	if h == nil {
		return false
	}
	m.recDepth.Add(1)
	defer m.recDepth.Add(-1)
	return h.h.HandleModuleFault(f)
}
