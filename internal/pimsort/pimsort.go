// Package pimsort implements the PIM sorting subroutine of Lemma 6.2, used
// by the DBSCAN cell-graph construction (USEC sorting step). The lemma's
// three regimes, driven by the batch size m relative to the ambient work n:
//
//	(i)   m = O(n/(P log P)):       ship to one module and sort locally;
//	(ii)  m = Ω(P log² P + n/(P log P)): sample P log P splitters in the CPU
//	      cache, scatter into P balanced ranges, sort each range on its
//	      module;
//	(iii) otherwise (m fits in cache): sort groups of n/(P log P) on random
//	      modules and merge on the CPU.
//
// All regimes genuinely sort; the meters record the lemma's work and
// communication shapes.
package pimsort

import (
	"sort"

	"pimkd/internal/mathx"
	"pimkd/internal/parallel"
	"pimkd/internal/pim"
)

// Sort sorts keys ascending on machine mach. ambient is the total batch
// work n the sort is embedded in (it sets the regime thresholds); pass
// len(keys) when standalone. salt varies module placement.
func Sort(mach *pim.Machine, keys []float64, ambient int, salt uint64) {
	m := len(keys)
	if m <= 1 {
		return
	}
	p := mach.P()
	logP := mathx.MaxInt(1, mathx.CeilLog2(p))
	small := mathx.MaxInt(1, ambient/(p*logP))

	switch {
	case m <= small:
		// Regime (i): one module sorts the whole batch.
		mach.RunRound(func(r *pim.Round) {
			r.Label("pimsort:one-module")
			mod := mach.Hash(salt)
			r.Transfer(mod, int64(m))
			r.ModuleWork(mod, int64(m)*int64(mathx.CeilLog2(m)+1))
			parallel.SortFloat64s(keys)
			r.Transfer(mod, int64(m))
		})
	case m >= p*logP*logP:
		// Regime (ii): splitter-sample into P balanced ranges.
		sampleSize := mathx.MinInt(m, p*logP)
		step := m / sampleSize
		sample := make([]float64, 0, sampleSize)
		for i := 0; i < m; i += step {
			sample = append(sample, keys[i])
		}
		parallel.SortFloat64s(sample)
		mach.CPUPhase(int64(len(sample)*mathx.CeilLog2(len(sample))+m*mathx.CeilLog2(p)), int64(mathx.CeilLog2(m)))
		splitters := make([]float64, p-1)
		for i := range splitters {
			splitters[i] = sample[(i+1)*len(sample)/p]
		}
		// Stable parallel scatter into the P splitter ranges (identical
		// contents and order to the sequential append loop).
		scattered, offs := parallel.CountingSortByKey(keys, p, func(k float64) int {
			return sort.SearchFloat64s(splitters, k)
		})
		ranges := make([][]float64, p)
		for b := 0; b < p; b++ {
			ranges[b] = scattered[offs[b]:offs[b+1]:offs[b+1]]
		}
		mach.RunRound(func(r *pim.Round) {
			r.Label("pimsort:splitter-ranges")
			r.OnModules(func(ctx *pim.ModuleCtx) {
				b := ctx.ID()
				ctx.Transfer(int64(len(ranges[b])))
				parallel.SortFloat64s(ranges[b])
				ctx.Work(int64(len(ranges[b])) * int64(mathx.CeilLog2(len(ranges[b])+1)+1))
				ctx.Transfer(int64(len(ranges[b])))
			})
		})
		// ranges are adjacent subslices of scattered, so after the per-range
		// sorts scattered is globally sorted.
		copy(keys, scattered)
	default:
		// Regime (iii): cache-resident — sort small groups on random
		// modules, merge on the CPU.
		groups := mathx.CeilDiv(m, small)
		pieces := make([][]float64, 0, groups)
		for lo := 0; lo < m; lo += small {
			hi := mathx.MinInt(lo+small, m)
			piece := make([]float64, hi-lo)
			copy(piece, keys[lo:hi])
			pieces = append(pieces, piece)
		}
		mach.RunRound(func(r *pim.Round) {
			r.Label("pimsort:group-merge")
			for i, piece := range pieces {
				mod := mach.Hash(salt + uint64(i) + 1)
				r.Transfer(mod, int64(len(piece)))
				r.ModuleWork(mod, int64(len(piece))*int64(mathx.CeilLog2(len(piece))+1))
				r.Transfer(mod, int64(len(piece)))
			}
			// The pieces sort concurrently (they model independent modules);
			// metering above stays sequential so the transfer sequence is
			// deterministic.
			parallel.For(len(pieces), func(i int) {
				sort.Float64s(pieces[i])
			})
		})
		mach.CPUPhase(int64(m*mathx.CeilLog2(groups+1)), int64(mathx.CeilLog2(m)))
		merged := mergeAll(pieces)
		copy(keys, merged)
	}
}

func mergeAll(pieces [][]float64) []float64 {
	for len(pieces) > 1 {
		pairs := len(pieces) / 2
		next := make([][]float64, (len(pieces)+1)/2)
		// Each level's pair merges are independent; the merge tree shape
		// (and hence the output) is fixed by the piece count alone.
		parallel.For(pairs, func(i int) {
			next[i] = merge2(pieces[2*i], pieces[2*i+1])
		})
		if len(pieces)%2 == 1 {
			next[pairs] = pieces[len(pieces)-1]
		}
		pieces = next
	}
	if len(pieces) == 0 {
		return nil
	}
	return pieces[0]
}

func merge2(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
