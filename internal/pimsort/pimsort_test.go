package pimsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pimkd/internal/pim"
)

func sortedCopy(xs []float64) []float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c
}

func randKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestAllRegimesSort(t *testing.T) {
	const ambient = 1 << 18
	mach := pim.NewMachine(64, 1<<20)
	for _, m := range []int{0, 1, 2, 10, 63, 64, 1000, 5000, 1 << 15, 1 << 17} {
		keys := randKeys(m, int64(m)+1)
		want := sortedCopy(keys)
		Sort(mach, keys, ambient, uint64(m))
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("m=%d: mismatch at %d", m, i)
			}
		}
	}
}

func TestSortProperty(t *testing.T) {
	mach := pim.NewMachine(8, 1<<16)
	f := func(xs []float64) bool {
		keys := append([]float64(nil), xs...)
		want := sortedCopy(keys)
		Sort(mach, keys, 1<<14, 99)
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCommunicationLinear(t *testing.T) {
	// Lemma 6.2: communication is O(m) in every regime.
	const ambient = 1 << 18
	for _, m := range []int{100, 4096, 1 << 16} {
		mach := pim.NewMachine(64, 1<<20)
		keys := randKeys(m, int64(m))
		Sort(mach, keys, ambient, 7)
		st := mach.Stats()
		if st.Communication > int64(4*m) {
			t.Fatalf("m=%d: communication %d exceeds 4m", m, st.Communication)
		}
		if st.Communication < int64(m) {
			t.Fatalf("m=%d: communication %d below m (keys must move)", m, st.Communication)
		}
	}
}

func TestLargeRegimeBalanced(t *testing.T) {
	mach := pim.NewMachine(64, 1<<20)
	keys := randKeys(1<<17, 3)
	Sort(mach, keys, 1<<18, 11)
	_, comm := mach.ModuleLoads()
	if r := pim.MaxLoadRatio(comm); r > 3 {
		t.Fatalf("regime (ii) imbalanced: max/mean %.2f", r)
	}
}

func TestDuplicateKeys(t *testing.T) {
	mach := pim.NewMachine(16, 1<<16)
	keys := make([]float64, 10000)
	for i := range keys {
		keys[i] = float64(i % 7)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	want := sortedCopy(keys)
	Sort(mach, keys, 1<<16, 5)
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("duplicates mis-sorted at %d", i)
		}
	}
}
