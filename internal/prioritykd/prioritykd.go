// Package prioritykd implements the shared-memory priority-search kd-tree
// of §6.1: a static kd-tree whose internal nodes are augmented with the
// maximum (priority, id) pair of their subtree, answering
// nearest-higher-priority queries — the dependent-point primitive of
// density peak clustering. The PIM version lives in internal/core
// (Tree.DependentPoints); this package is the ParGeo-style baseline and the
// reference the tests compare both against.
package prioritykd

import (
	"math"

	"pimkd/internal/geom"
)

// Item is a point with a priority and an opaque id. Queries look for the
// nearest item strictly greater in (Priority, ID) lexicographic order.
type Item struct {
	P        geom.Point
	Priority float64
	ID       int32
}

// Meter counts the structural work of queries and construction.
type Meter struct {
	// NodeVisits counts tree nodes touched (the shared-memory
	// communication proxy).
	NodeVisits int64
	// PointOps counts point-granularity work.
	PointOps int64
}

// Tree is a static priority-search kd-tree.
type Tree struct {
	root  *node
	items []Item
	Meter Meter
}

type node struct {
	axis     int
	split    float64
	l, r     *node
	box      geom.Box
	maxPri   float64
	maxPriID int32
	idx      []int32 // leaf: indices into items
}

// New builds a tree over items with the given leaf bucket size (default 8
// when leafSize <= 0). The items slice is retained (not copied) and must
// not be mutated afterwards.
func New(items []Item, leafSize int) *Tree {
	if leafSize <= 0 {
		leafSize = 8
	}
	t := &Tree{items: items}
	if len(items) == 0 {
		return t
	}
	idx := make([]int32, len(items))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = t.build(idx, leafSize)
	return t
}

// Size returns the number of stored items.
func (t *Tree) Size() int { return len(t.items) }

func (t *Tree) build(idx []int32, leafSize int) *node {
	t.Meter.PointOps += int64(len(idx))
	box := t.indexBox(idx)
	nd := &node{box: box, maxPri: math.Inf(-1), maxPriID: -1}
	for _, i := range idx {
		it := t.items[i]
		if priLess(nd.maxPri, nd.maxPriID, it.Priority, it.ID) {
			nd.maxPri, nd.maxPriID = it.Priority, it.ID
		}
	}
	axis, width := box.LongestAxis()
	if len(idx) <= leafSize || width <= 0 {
		nd.idx = idx
		return nd
	}
	split := medianAbove(t.coords(idx, axis))
	var left, right []int32
	for _, id := range idx {
		if t.items[id].P[axis] < split {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		nd.idx = idx
		return nd
	}
	nd.axis, nd.split = axis, split
	nd.l = t.build(left, leafSize)
	nd.r = t.build(right, leafSize)
	return nd
}

func (t *Tree) coords(idx []int32, axis int) []float64 {
	out := make([]float64, len(idx))
	for i, id := range idx {
		out[i] = t.items[id].P[axis]
	}
	return out
}

func (t *Tree) indexBox(idx []int32) geom.Box {
	lo := t.items[idx[0]].P.Clone()
	hi := t.items[idx[0]].P.Clone()
	for _, i := range idx[1:] {
		p := t.items[i].P
		for d := range lo {
			if p[d] < lo[d] {
				lo[d] = p[d]
			}
			if p[d] > hi[d] {
				hi[d] = p[d]
			}
		}
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// priLess orders (priority, id) pairs lexicographically.
func priLess(p1 float64, id1 int32, p2 float64, id2 int32) bool {
	if p1 != p2 {
		return p1 < p2
	}
	return id1 < id2
}

// medianAbove returns the median value, bumped to the next distinct value
// when the median equals the minimum (so a (v < split) partition always
// makes progress); it returns the maximum when all values are equal (the
// caller then falls back to a leaf).
func medianAbove(coords []float64) float64 {
	quickMedian(coords)
	v := coords[len(coords)/2]
	min, next := coords[0], math.Inf(1)
	for _, x := range coords {
		if x < min {
			min = x
		}
	}
	if v > min {
		return v
	}
	for _, x := range coords {
		if x > v && x < next {
			next = x
		}
	}
	if math.IsInf(next, 1) {
		return v
	}
	return next
}

func quickMedian(c []float64) {
	k := len(c) / 2
	lo, hi := 0, len(c)-1
	for lo < hi {
		pivot := c[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for c[i] < pivot {
				i++
			}
			for c[j] > pivot {
				j--
			}
			if i <= j {
				c[i], c[j] = c[j], c[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// NearestHigher returns the id of the nearest stored item with
// (Priority, ID) strictly greater than (pri, id), and its squared distance;
// (-1, +Inf) when none exists. The search prunes subtrees whose priority
// augmentation cannot beat (pri, id) and whose cells cannot beat the
// current best distance.
func (t *Tree) NearestHigher(q geom.Point, pri float64, id int32) (int32, float64) {
	best := int32(-1)
	bestD2 := math.Inf(1)
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd == nil {
			return
		}
		if !priLess(pri, id, nd.maxPri, nd.maxPriID) {
			return
		}
		if nd.box.Dist2ToPoint(q) >= bestD2 {
			return
		}
		t.Meter.NodeVisits++
		if nd.idx != nil {
			t.Meter.PointOps += int64(len(nd.idx))
			for _, i := range nd.idx {
				it := t.items[i]
				if !priLess(pri, id, it.Priority, it.ID) {
					continue
				}
				if d2 := geom.Dist2(q, it.P); d2 < bestD2 {
					bestD2, best = d2, i
				}
			}
			return
		}
		near, far := nd.l, nd.r
		if q[nd.axis] >= nd.split {
			near, far = far, near
		}
		visit(near)
		visit(far)
	}
	visit(t.root)
	if best >= 0 {
		return t.items[best].ID, bestD2
	}
	return -1, bestD2
}
