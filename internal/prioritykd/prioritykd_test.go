package prioritykd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pimkd/internal/geom"
	"pimkd/internal/workload"
)

func randItems(n int, seed int64, priLevels int) []Item {
	pts := workload.Uniform(n, 2, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	items := make([]Item, n)
	for i, p := range pts {
		items[i] = Item{P: p, Priority: float64(rng.Intn(priLevels)), ID: int32(i)}
	}
	return items
}

func bruteNearestHigher(items []Item, q geom.Point, pri float64, id int32) (int32, float64) {
	best := int32(-1)
	bestD2 := math.Inf(1)
	for _, it := range items {
		higher := it.Priority > pri || (it.Priority == pri && it.ID > id)
		if !higher {
			continue
		}
		if d2 := geom.Dist2(q, it.P); d2 < bestD2 {
			bestD2, best = d2, it.ID
		}
	}
	return best, bestD2
}

func TestNearestHigherMatchesBrute(t *testing.T) {
	items := randItems(1500, 1, 10)
	tree := New(items, 8)
	for _, it := range items[:300] {
		gotID, gotD2 := tree.NearestHigher(it.P, it.Priority, it.ID)
		wantID, wantD2 := bruteNearestHigher(items, it.P, it.Priority, it.ID)
		if gotID != wantID || math.Abs(gotD2-wantD2) > 1e-12 {
			t.Fatalf("item %d: got (%d, %g) want (%d, %g)", it.ID, gotID, gotD2, wantID, wantD2)
		}
	}
}

func TestGlobalPeakHasNoDependent(t *testing.T) {
	items := randItems(400, 3, 5)
	tree := New(items, 8)
	peak := items[0]
	for _, it := range items {
		if it.Priority > peak.Priority || (it.Priority == peak.Priority && it.ID > peak.ID) {
			peak = it
		}
	}
	if id, d2 := tree.NearestHigher(peak.P, peak.Priority, peak.ID); id != -1 || !math.IsInf(d2, 1) {
		t.Fatalf("peak has dependent %d at %g", id, d2)
	}
}

func TestTiesBrokenByID(t *testing.T) {
	items := []Item{
		{P: geom.Point{0, 0}, Priority: 1, ID: 0},
		{P: geom.Point{1, 0}, Priority: 1, ID: 1},
		{P: geom.Point{2, 0}, Priority: 1, ID: 2},
	}
	tree := New(items, 1)
	// Item 0's nearest strictly-higher (same priority, bigger id) is item 1.
	if id, _ := tree.NearestHigher(items[0].P, 1, 0); id != 1 {
		t.Fatalf("got %d", id)
	}
	// Item 2 (highest id at top priority) is the peak.
	if id, _ := tree.NearestHigher(items[2].P, 1, 2); id != -1 {
		t.Fatalf("got %d", id)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tree := New(nil, 8)
	if tree.Size() != 0 {
		t.Fatal("empty size")
	}
	if id, _ := tree.NearestHigher(geom.Point{0, 0}, 0, -1); id != -1 {
		t.Fatal("empty tree found a neighbor")
	}
	one := New([]Item{{P: geom.Point{0.5, 0.5}, Priority: 3, ID: 7}}, 8)
	if id, _ := one.NearestHigher(geom.Point{0, 0}, 1, 0); id != 7 {
		t.Fatalf("single-item lookup got %d", id)
	}
}

func TestDuplicatePositions(t *testing.T) {
	items := make([]Item, 60)
	for i := range items {
		items[i] = Item{P: geom.Point{0.5, 0.5}, Priority: float64(i), ID: int32(i)}
	}
	tree := New(items, 4)
	for i := 0; i < 59; i++ {
		id, d2 := tree.NearestHigher(items[i].P, items[i].Priority, items[i].ID)
		if d2 != 0 || id < 0 {
			t.Fatalf("duplicate %d: got (%d, %g)", i, id, d2)
		}
	}
}

func TestPruningIsSound(t *testing.T) {
	f := func(seed int64) bool {
		items := randItems(200, seed, 4)
		tree := New(items, 4)
		for _, it := range items[:40] {
			gotID, _ := tree.NearestHigher(it.P, it.Priority, it.ID)
			wantID, _ := bruteNearestHigher(items, it.P, it.Priority, it.ID)
			if gotID != wantID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterAccumulates(t *testing.T) {
	items := randItems(1000, 9, 8)
	tree := New(items, 8)
	pre := tree.Meter.NodeVisits
	tree.NearestHigher(items[0].P, items[0].Priority, items[0].ID)
	if tree.Meter.NodeVisits <= pre {
		t.Fatal("no node visits metered")
	}
}
