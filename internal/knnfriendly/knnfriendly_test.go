package knnfriendly

import (
	"math/rand"
	"testing"

	"pimkd/internal/geom"
	"pimkd/internal/workload"
)

func TestUniformIsFriendly(t *testing.T) {
	pts := workload.Uniform(8000, 2, 1)
	rep := Analyze(pts, Params{})
	if !rep.Friendly() {
		t.Fatalf("uniform data judged unfriendly: %+v", rep)
	}
	if rep.Dim != 2 || rep.SmallCells == 0 {
		t.Fatalf("bad report %+v", rep)
	}
}

func TestGaussianClustersAreFriendly(t *testing.T) {
	pts := workload.GaussianClusters(8000, 2, 6, 0.05, 2)
	rep := Analyze(pts, Params{})
	// Smooth cluster mixtures satisfy the *local* uniformity condition even
	// though the global density varies.
	if rep.CompactFraction < 0.8 {
		t.Fatalf("clusters judged non-compact: %+v", rep)
	}
}

func TestLineDataIsUnfriendly(t *testing.T) {
	// Points on a 1-D line embedded in 2-D: cells collapse to slivers with
	// enormous aspect ratios — condition 2 must fail.
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 6000)
	for i := range pts {
		x := rng.Float64()
		pts[i] = geom.Point{x, 1e-9 * rng.Float64()}
	}
	rep := Analyze(pts, Params{})
	if rep.Friendly() {
		t.Fatalf("line data judged friendly: %+v", rep)
	}
	if rep.AspectP95 < 100 {
		t.Fatalf("sliver cells not detected: p95 aspect %.1f", rep.AspectP95)
	}
}

func TestExtremeDensitySkewDetected(t *testing.T) {
	// 99% of the mass in a microscopic hotspot, the rest spread out: the
	// local density estimate must show orders-of-magnitude dispersion.
	var pts []geom.Point
	pts = append(pts, workload.Hotspot(6000, 2, 1e-7, 5)...)
	pts = append(pts, workload.Uniform(60, 2, 6)...)
	rep := Analyze(pts, Params{Samples: 400})
	if rep.UniformityCV <= 1.0 {
		t.Fatalf("density skew not detected: CV %.2f", rep.UniformityCV)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if rep := Analyze(nil, Params{}); rep.Dim != 0 {
		t.Fatal("empty dataset produced a report")
	}
	rep := Analyze(workload.Uniform(5, 3, 7), Params{})
	if rep.Dim != 3 {
		t.Fatalf("dim %d", rep.Dim)
	}
}

func TestDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.K != 16 || p.Eps1 != 2 || p.Eps2 != 2 || p.Samples != 200 {
		t.Fatalf("defaults %+v", p)
	}
}

func TestAspect(t *testing.T) {
	if a, ok := aspect(geom.NewBox(geom.Point{0, 0}, geom.Point{2, 1})); !ok || a != 2 {
		t.Fatalf("aspect %g ok=%v", a, ok)
	}
	if _, ok := aspect(geom.NewBox(geom.Point{0, 0}, geom.Point{0, 0})); ok {
		t.Fatal("degenerate box has an aspect")
	}
	if _, ok := aspect(geom.UniverseBox(2)); ok {
		t.Fatal("unbounded box has an aspect")
	}
}
