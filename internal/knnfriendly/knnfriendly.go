// Package knnfriendly implements the dataset diagnostics of the paper's
// Appendix A (Definition 2): the four conditions under which Theorem 4.5's
// expected O(k) leaves-per-kNN-query bound holds — constant dimension,
// compact cells, local uniformity, and bounded expansion ratio. Analyze
// builds a kd-tree over the dataset and measures each condition, so users
// can predict whether the PIM-kd-tree's expected kNN bounds apply to their
// data before deploying.
package knnfriendly

import (
	"math"
	"math/rand"
	"sort"

	"pimkd/internal/geom"
	"pimkd/internal/pkdtree"
)

// Params are the (ε₁, ε₂) slack constants of Definition 2.
type Params struct {
	// Eps1 bounds cell aspect ratios: small cells must have
	// longest/shortest side <= 1+Eps1. Default 2.
	Eps1 float64
	// Eps2 bounds sibling expansion: the sibling of a <k-point cell must
	// hold at most (1+Eps2)·k points. Default 2.
	Eps2 float64
	// K is the neighborhood size of interest. Default 16.
	K int
	// Samples is the number of probe points for the local-uniformity
	// estimate. Default 200.
	Samples int
	// Seed drives probe sampling.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Eps1 <= 0 {
		p.Eps1 = 2
	}
	if p.Eps2 <= 0 {
		p.Eps2 = 2
	}
	if p.K <= 0 {
		p.K = 16
	}
	if p.Samples <= 0 {
		p.Samples = 200
	}
	return p
}

// Report summarizes how well a dataset satisfies Definition 2.
type Report struct {
	// Dim is the dimension (condition 1 wants O(1); <15 in practice).
	Dim int
	// SmallCells is the number of cells examined for conditions 2 and 4
	// (those holding fewer than (1+ε₂)·k points).
	SmallCells int
	// CompactFraction is the fraction of small cells whose aspect ratio
	// (longest/shortest positive side) is at most 1+ε₁ (condition 2).
	CompactFraction float64
	// AspectP95 is the 95th-percentile aspect ratio over small cells.
	AspectP95 float64
	// ExpansionFraction is the fraction of <k-point cells whose sibling
	// holds at most (1+ε₂)·k points (condition 4).
	ExpansionFraction float64
	// UniformityCV is the coefficient of variation of the local density
	// estimated over probe neighborhoods (condition 3: a locally uniform
	// density keeps this small; heavy skew inflates it).
	UniformityCV float64
}

// Friendly applies a pragmatic pass/fail rule: conditions 2 and 4 hold for
// (almost) all cells and the local density dispersion is moderate.
func (r Report) Friendly() bool {
	return r.CompactFraction >= 0.9 && r.ExpansionFraction >= 0.9 && r.UniformityCV <= 1.0
}

// Analyze builds a kd-tree over pts and measures the Definition 2
// conditions with the given parameters.
func Analyze(pts []geom.Point, par Params) Report {
	par = par.withDefaults()
	rep := Report{}
	if len(pts) == 0 {
		return rep
	}
	rep.Dim = len(pts[0])
	items := make([]pkdtree.Item, len(pts))
	for i, p := range pts {
		items[i] = pkdtree.Item{P: p, ID: int32(i)}
	}
	tree := pkdtree.New(pkdtree.Config{Dim: rep.Dim, Seed: par.Seed}, items)

	// Conditions 2 and 4: shapes and sibling sizes of small cells.
	smallLimit := int(float64(par.K) * (1 + par.Eps2))
	var aspects []float64
	compact, expansionOK, expansionChecked := 0, 0, 0
	tree.WalkCells(func(c pkdtree.CellInfo) {
		if c.Size >= smallLimit || c.Depth == 0 {
			return
		}
		rep.SmallCells++
		if a, ok := aspect(c.Box); ok {
			aspects = append(aspects, a)
			if a <= 1+par.Eps1 {
				compact++
			}
		} else {
			// Degenerate (zero-width) cells count as compact: a single
			// coordinate value has no aspect.
			compact++
		}
		if c.Size < par.K {
			expansionChecked++
			if c.SiblingSize <= smallLimit {
				expansionOK++
			}
		}
	})
	if rep.SmallCells > 0 {
		rep.CompactFraction = float64(compact) / float64(rep.SmallCells)
	}
	if expansionChecked > 0 {
		rep.ExpansionFraction = float64(expansionOK) / float64(expansionChecked)
	} else {
		rep.ExpansionFraction = 1
	}
	if len(aspects) > 0 {
		sort.Float64s(aspects)
		rep.AspectP95 = aspects[int(0.95*float64(len(aspects)-1))]
	}

	// Condition 3: local uniformity. For probe points drawn from the
	// dataset, compare the k-NN radius–implied density across probes: on a
	// locally uniform density, k / r_k^D is near-constant.
	rng := rand.New(rand.NewSource(par.Seed + 1))
	var dens []float64
	for s := 0; s < par.Samples; s++ {
		q := pts[rng.Intn(len(pts))]
		nn := tree.KNN(q, par.K)
		if len(nn) < par.K {
			continue
		}
		rk := math.Sqrt(nn[len(nn)-1].Dist2)
		if rk <= 0 {
			continue
		}
		dens = append(dens, float64(par.K)/math.Pow(rk, float64(rep.Dim)))
	}
	if len(dens) > 1 {
		// Coefficient of variation on the log scale is robust to the
		// heavy right tail density estimates have; report CV of log-dens.
		var mean float64
		logs := make([]float64, len(dens))
		for i, d := range dens {
			logs[i] = math.Log(d)
			mean += logs[i]
		}
		mean /= float64(len(logs))
		var varsum float64
		for _, l := range logs {
			varsum += (l - mean) * (l - mean)
		}
		sd := math.Sqrt(varsum / float64(len(logs)))
		rep.UniformityCV = sd / math.Ln2 / float64(rep.Dim) // per-doubling, per-dimension spread
	}
	return rep
}

// aspect returns the longest/shortest positive side ratio of a box; ok is
// false when every side is zero or any side is unbounded.
func aspect(b geom.Box) (float64, bool) {
	longest, shortest := 0.0, math.Inf(1)
	for d := range b.Lo {
		w := b.Hi[d] - b.Lo[d]
		if math.IsInf(w, 1) {
			return 0, false
		}
		if w > longest {
			longest = w
		}
		if w > 0 && w < shortest {
			shortest = w
		}
	}
	if longest == 0 || math.IsInf(shortest, 1) {
		return 0, false
	}
	return longest / shortest, true
}
