// Package serve turns concurrent singleton requests into the well-formed
// operation batches the PIM-kd-tree is designed around.
//
// The paper's headline results are batch bounds: a batch of S LeafSearch,
// kNN, range, or update operations costs O(S log* P) off-chip communication
// and stays PIM-balanced even under adversarial skew (Table 1, Theorems
// 4.1/4.3, Lemma 3.8). A deployed index, however, receives *individual*
// requests from many concurrent clients. This package supplies the missing
// layer:
//
//   - admission control with backpressure (a bounded number of requests may
//     be in flight; further submitters block),
//   - adaptive batch coalescing: requests of the same kind (and, for kNN,
//     the same k) accumulate until the batch reaches MaxBatch = S or the
//     oldest request has lingered MaxLinger, whichever comes first,
//   - epoch-based read/write scheduling: batches execute in admission order
//     on a single executor goroutine that owns the tree; consecutive read
//     batches share an epoch, while every update batch is serialized into
//     an epoch of its own, so no query ever observes a partially
//     reconstructed tree,
//   - per-request futures that fan the batch results back to their callers,
//   - per-batch cost attribution: every executed batch is bracketed by
//     pim.Machine.SnapshotStats calls, and the deltas (communication, PIM
//     work/time, rounds, per-module balance) are aggregated per operation
//     kind and exposed for a /statsz endpoint — making the paper's bounds
//     observable under live concurrent traffic.
package serve

import (
	"math/rand"
	"time"

	"pimkd/internal/persist"
)

// Config parameterizes a Service. The zero value is usable; defaults are
// filled in by New.
type Config struct {
	// MaxBatch is S, the largest batch the coalescer forms. A queue that
	// reaches MaxBatch pending requests is sealed and dispatched
	// immediately. Default 256.
	MaxBatch int
	// MaxLinger bounds how long the oldest request of a forming batch may
	// wait before the batch is sealed regardless of size. Default 2ms.
	MaxLinger time.Duration
	// MaxPending is the admission limit: at most this many requests may be
	// admitted and not yet replied to. Further submitters block (the
	// backpressure mechanism) until capacity frees or their context is
	// canceled. Default 4·MaxBatch.
	MaxPending int
	// Seed drives every randomized choice made by the service layer itself
	// (currently the reservoir sampling of batch records kept for /statsz).
	// Together with seeded workload generators and core.Config.Seed this
	// makes a replayed request trace fully deterministic. Default 1.
	// Ignored when Rng is set.
	Seed int64
	// Rng, when non-nil, replaces the Seed-derived generator. The Service
	// takes ownership: the Rng must not be used concurrently elsewhere.
	Rng *rand.Rand
	// OnBatch, when non-nil, is invoked on the executor goroutine after
	// every batch completes, before replies are delivered. Because it runs
	// on the goroutine that owns the tree, it may safely inspect the tree
	// (the concurrency tests use it to check invariants between batches);
	// it must not submit requests, which would deadlock.
	OnBatch func(BatchRecord)
	// TraceCapacity, when > 0, attaches a trace.Tracer retaining that many
	// per-round records to the tree's machine. Every BSP round a batch
	// triggers is then labeled "serve/<kind>/batch=<n>/..." and the
	// analysis report is exposed on /tracez (JSON, or raw Perfetto with
	// ?format=perfetto). 0 disables tracing (no per-round overhead).
	TraceCapacity int

	// ShedHighWater, when > 0, turns on load shedding: a submission that
	// arrives while at least this many of the MaxPending admission slots
	// are held is rejected immediately with ErrOverloaded (HTTP 503 +
	// Retry-After) instead of blocking. 0 (the default) disables shedding,
	// leaving pure blocking backpressure.
	ShedHighWater int
	// ShedRetryAfter is the Retry-After hint attached to shed responses.
	// Default 1s.
	ShedRetryAfter time.Duration
	// RetryTransient is how many times a read-only batch that fails with a
	// transient machine fault (ErrFault: a contained module crash the
	// supervisor gave up on, or a round timeout) is re-executed before the
	// error is fanned out to its callers. Write batches are never retried —
	// a fault may have left a partial mutation, and blind re-execution
	// could double-apply it. Default 2; -1 disables retries.
	RetryTransient int
	// RetryBackoff is the wall-clock delay before the first batch retry; it
	// doubles per attempt. Never metered. Default 500µs.
	RetryBackoff time.Duration

	// Persist, when non-nil, turns on durable-write mode: every sealed
	// write batch is appended to this store's write-ahead log before it
	// commits to the machine (acknowledgement ⇒ durability), and a
	// background checkpointer periodically folds the log into a snapshot.
	// The Service does not Open or Close the store — the caller owns its
	// lifecycle and must Close it only after Service.Close returns.
	Persist *persist.Store
	// CheckpointEvery starts a checkpoint after this many committed write
	// batches. Default 256; negative disables the count trigger.
	CheckpointEvery int
	// CheckpointInterval starts a checkpoint when this much wall time has
	// passed since the last one (checked after each committed write batch —
	// an entirely idle service does not checkpoint). Default 30s; negative
	// disables the interval trigger.
	CheckpointInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 2 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4 * c.MaxBatch
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ShedRetryAfter <= 0 {
		c.ShedRetryAfter = time.Second
	}
	switch {
	case c.RetryTransient == 0:
		c.RetryTransient = 2
	case c.RetryTransient < 0:
		c.RetryTransient = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Microsecond
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 256
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 30 * time.Second
	}
	return c
}
