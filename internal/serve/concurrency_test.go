// Concurrency test for the coalescing service, designed to be meaningful
// under -race (CI runs `go test -race ./internal/serve/`): many client
// goroutines submit reads while update batches churn the tree. It asserts
// the three batching contracts:
//
//	(a) every request gets exactly one reply (per-call, plus the batch
//	    records account for every admitted request exactly once),
//	(b) no read batch ever observes a mid-rebuild tree (the tree passes
//	    CheckInvariants at every read-batch boundary, and read-your-writes
//	    holds across insert→lookup and delete→lookup pairs),
//	(c) batches never exceed MaxBatch and the linger deadline always seals
//	    a forming batch (bounded by a generous scheduling slack).
package serve

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/pim"
	"pimkd/internal/workload"
)

func TestConcurrentCoalescingChurn(t *testing.T) {
	const (
		nBase     = 1500
		dim       = 2
		p         = 8
		maxBatch  = 32
		maxLinger = time.Millisecond
		writers   = 4
		writerOps = 60
		readers   = 6
		readerOps = 90
	)
	// lingerSlack bounds measured linger: the deadline arms a timer at
	// MaxLinger, but the timer goroutine can be scheduled late on a loaded
	// (or race-instrumented) machine, so the policy bound carries OS
	// scheduling slack.
	const lingerSlack = 2 * time.Second

	mach := pim.NewMachine(p, 1<<20)
	tree := core.New(core.Config{Dim: dim, Seed: 17}, mach)
	base := workload.Uniform(nBase, dim, 19)
	items := make([]core.Item, nBase)
	for i, pt := range base {
		items[i] = core.Item{P: pt, ID: int32(i)}
	}
	tree.Build(items)

	var (
		recMu      sync.Mutex
		recs       []BatchRecord
		invariantE []error
	)
	svc := New(Config{
		MaxBatch:   maxBatch,
		MaxLinger:  maxLinger,
		MaxPending: 128,
		Seed:       7,
		OnBatch: func(r BatchRecord) {
			// Runs on the executor goroutine, which owns the tree: a
			// consistent view here proves no reader can be mid-rebuild.
			recMu.Lock()
			defer recMu.Unlock()
			recs = append(recs, r)
			if err := tree.CheckInvariants(); err != nil {
				invariantE = append(invariantE, err)
			}
		},
	}, tree)

	ctx := context.Background()
	var issued atomic.Int64
	var wg sync.WaitGroup

	// Writers: insert unique items, read them back, occasionally delete
	// and verify the delete is visible.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			var mine []core.Item
			for i := 0; i < writerOps; i++ {
				it := core.Item{
					P:  geom.Point{rng.Float64(), rng.Float64()},
					ID: int32(100000 + g*1000 + i),
				}
				if _, err := svc.Insert(ctx, it); err != nil {
					t.Errorf("writer %d insert: %v", g, err)
					return
				}
				issued.Add(1)
				mine = append(mine, it)
				got, _, err := svc.Lookup(ctx, it.P)
				if err != nil {
					t.Errorf("writer %d lookup: %v", g, err)
					return
				}
				issued.Add(1)
				if !containsID(got, it.ID) {
					t.Errorf("writer %d: inserted item %d not visible", g, it.ID)
				}
				if i%10 == 9 {
					victim := mine[rng.Intn(len(mine)-1)]
					if _, err := svc.Delete(ctx, victim); err != nil {
						t.Errorf("writer %d delete: %v", g, err)
						return
					}
					issued.Add(1)
					got, _, err := svc.Lookup(ctx, victim.P)
					if err != nil {
						t.Errorf("writer %d lookup-after-delete: %v", g, err)
						return
					}
					issued.Add(1)
					if containsID(got, victim.ID) {
						t.Errorf("writer %d: deleted item %d still visible", g, victim.ID)
					}
				}
			}
		}(g)
	}

	// Readers: lookups of never-deleted base points, kNN, and small range
	// queries, all while the writers churn.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < readerOps; i++ {
				switch i % 3 {
				case 0:
					j := rng.Intn(nBase)
					got, _, err := svc.Lookup(ctx, base[j])
					if err != nil {
						t.Errorf("reader %d lookup: %v", g, err)
						return
					}
					issued.Add(1)
					if !containsID(got, int32(j)) {
						t.Errorf("reader %d: base item %d missing", g, j)
					}
				case 1:
					q := geom.Point{rng.Float64(), rng.Float64()}
					ns, _, err := svc.KNN(ctx, q, 4)
					if err != nil {
						t.Errorf("reader %d knn: %v", g, err)
						return
					}
					issued.Add(1)
					if len(ns) != 4 {
						t.Errorf("reader %d: knn returned %d of 4", g, len(ns))
					}
					for j := 1; j < len(ns); j++ {
						if ns[j].Dist < ns[j-1].Dist {
							t.Errorf("reader %d: knn unsorted", g)
						}
					}
				case 2:
					lo := geom.Point{rng.Float64() * 0.9, rng.Float64() * 0.9}
					hi := geom.Point{lo[0] + 0.1, lo[1] + 0.1}
					got, _, err := svc.Range(ctx, geom.NewBox(lo, hi))
					if err != nil {
						t.Errorf("reader %d range: %v", g, err)
						return
					}
					issued.Add(1)
					box := geom.NewBox(lo, hi)
					for _, it := range got {
						if !box.Contains(it.P) {
							t.Errorf("reader %d: range item outside box", g)
						}
					}
				}
			}
		}(g)
	}

	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// (b) the tree stayed consistent at every batch boundary.
	for _, err := range invariantE {
		t.Errorf("invariant violation observed by a batch: %v", err)
	}

	// (a) every admitted request appears in exactly one executed batch.
	var inBatches int64
	for _, r := range recs {
		inBatches += int64(r.Size)
	}
	if inBatches != issued.Load() {
		t.Fatalf("batch records account for %d requests, %d issued", inBatches, issued.Load())
	}
	snap := svc.Metrics()
	if snap.TotalRequests != issued.Load() {
		t.Fatalf("metrics saw %d requests, %d issued", snap.TotalRequests, issued.Load())
	}

	// (c) batch-size cap and linger deadline.
	writeEpochs := map[int64]int{}
	epochBatches := map[int64]int{}
	for _, r := range recs {
		if r.Size > maxBatch {
			t.Fatalf("batch of %d exceeds MaxBatch %d", r.Size, maxBatch)
		}
		if r.Linger > maxLinger+lingerSlack {
			t.Fatalf("batch lingered %v past the %v deadline", r.Linger, maxLinger)
		}
		epochBatches[r.Epoch]++
		if r.Kind == "insert" || r.Kind == "delete" {
			writeEpochs[r.Epoch]++
		}
	}
	// Epoch contract: a write batch owns its epoch exclusively.
	for e, writes := range writeEpochs {
		if writes != 1 || epochBatches[e] != 1 {
			t.Fatalf("epoch %d mixes a write with %d other batches", e, epochBatches[e]-1)
		}
	}

	// Under this concurrency, coalescing must actually happen: the mean
	// batch size observed by the service comfortably exceeds 1.
	if snap.MeanBatchSize <= 1.05 {
		t.Fatalf("mean batch size %.2f: no coalescing under concurrent load", snap.MeanBatchSize)
	}
	t.Logf("coalescing: %d requests in %d batches (mean %.1f), %d epochs",
		snap.TotalRequests, snap.TotalBatches, snap.MeanBatchSize, snap.Epochs)
}
