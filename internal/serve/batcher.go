package serve

import (
	"context"
	"time"
)

// submit is the single admission path: acquire a backpressure token, enqueue
// the request into its forming batch (sealing on MaxBatch), and wait for the
// reply. The token is released by the executor when the reply is delivered,
// bounding admitted-but-unreplied requests at MaxPending.
func (s *Service) submit(ctx context.Context, req *request) (reply, error) {
	// Admission with backpressure.
	select {
	case s.tokens <- struct{}{}:
	case <-s.closing:
		return reply{}, ErrClosed
	case <-ctx.Done():
		return reply{}, ctx.Err()
	}

	req.enq = time.Now()
	req.done = make(chan reply, 1)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.tokens
		return reply{}, ErrClosed
	}
	key := batchKey{kind: req.kind, k: req.k}
	q := s.pending[key]
	if q == nil {
		q = &pendingQueue{}
		s.pending[key] = q
	}
	q.reqs = append(q.reqs, req)
	if len(q.reqs) == 1 {
		q.firstEnq = req.enq
		q.gen++
		gen := q.gen
		q.timer = time.AfterFunc(s.cfg.MaxLinger, func() { s.sealOnLinger(key, gen) })
	}
	if len(q.reqs) >= s.cfg.MaxBatch {
		s.sealLocked(key, "full")
	}
	s.mu.Unlock()

	// The request is committed: it will be executed and replied to exactly
	// once even if the caller gives up waiting.
	select {
	case rep := <-req.done:
		return rep, rep.err
	case <-ctx.Done():
		return reply{}, ctx.Err()
	}
}

// sealOnLinger is the MaxLinger deadline callback for one forming batch.
// The generation check discards stale timers that fire after their queue
// was already sealed by reaching MaxBatch.
func (s *Service) sealOnLinger(key batchKey, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	q := s.pending[key]
	if q == nil || q.gen != gen || len(q.reqs) == 0 {
		return
	}
	s.sealLocked(key, "linger")
}

// sealLocked closes the forming batch for key and hands it to the executor.
// Callers hold s.mu. The send cannot block: batchCh has capacity MaxPending
// and every queued batch carries at least one admitted request.
func (s *Service) sealLocked(key batchKey, by string) {
	q := s.pending[key]
	if q == nil || len(q.reqs) == 0 {
		return
	}
	if q.timer != nil {
		q.timer.Stop()
	}
	delete(s.pending, key)
	s.batchCh <- &batch{
		key:      key,
		reqs:     q.reqs,
		firstEnq: q.firstEnq,
		sealed:   time.Now(),
		sealedBy: by,
	}
}
