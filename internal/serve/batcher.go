package serve

import (
	"context"
	"math"
	"time"
)

// submit is the single admission path: acquire a backpressure token, enqueue
// the request into its forming batch (sealing on MaxBatch), and wait for the
// reply. The token is released by the executor when the reply is delivered,
// bounding admitted-but-unreplied requests at MaxPending.
func (s *Service) submit(ctx context.Context, req *request) (reply, error) {
	// Load shedding: above the high-water mark, fail fast instead of
	// queueing — a saturated service that keeps admitting work only grows
	// its tail latency. The check is advisory (len on a channel races with
	// concurrent admits), which is fine: shedding is a pressure valve, not
	// an exact capacity proof.
	if hw := s.cfg.ShedHighWater; hw > 0 && len(s.tokens) >= hw {
		s.metrics.shed()
		return reply{}, ErrOverloaded
	}

	// Admission with backpressure.
	select {
	case s.tokens <- struct{}{}:
	case <-s.closing:
		return reply{}, ErrClosed
	case <-ctx.Done():
		return reply{}, ctx.Err()
	}

	req.enq = time.Now()
	req.ctx = ctx
	req.done = make(chan reply, 1)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.tokens
		return reply{}, ErrClosed
	}
	key := batchKey{kind: req.kind, k: req.k, radiusBits: math.Float64bits(req.radius), unique: req.unique}
	q := s.pending[key]
	if q == nil {
		q = &pendingQueue{}
		s.pending[key] = q
	}
	q.reqs = append(q.reqs, req)
	if len(q.reqs) == 1 {
		q.firstEnq = req.enq
		q.gen++
		gen := q.gen
		q.timer = time.AfterFunc(s.cfg.MaxLinger, func() { s.sealOnLinger(key, gen) })
	}
	if len(q.reqs) >= s.cfg.MaxBatch {
		s.sealLocked(key, "full")
	}
	s.mu.Unlock()

	// Wait for the reply. A caller whose context ends while its batch is
	// still forming withdraws the request and releases the admission slot
	// immediately; once the batch is sealed the executor owns the request
	// and will release the slot when it replies (into the buffered done
	// channel, so nothing blocks on the departed caller).
	select {
	case rep := <-req.done:
		return rep, rep.err
	case <-ctx.Done():
		if s.abandon(key, req) {
			<-s.tokens
		}
		return reply{}, ctx.Err()
	}
}

// abandon withdraws req from its still-forming batch. It returns false when
// the batch was already sealed (or the request already executed), in which
// case the executor remains responsible for the admission token.
func (s *Service) abandon(key batchKey, req *request) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.pending[key]
	if q == nil {
		return false
	}
	for i, r := range q.reqs {
		if r != req {
			continue
		}
		q.reqs = append(q.reqs[:i], q.reqs[i+1:]...)
		if len(q.reqs) == 0 {
			if q.timer != nil {
				q.timer.Stop()
			}
			delete(s.pending, key)
		}
		s.metrics.canceled()
		return true
	}
	return false
}

// sealOnLinger is the MaxLinger deadline callback for one forming batch.
// The generation check discards stale timers that fire after their queue
// was already sealed by reaching MaxBatch.
func (s *Service) sealOnLinger(key batchKey, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	q := s.pending[key]
	if q == nil || q.gen != gen || len(q.reqs) == 0 {
		return
	}
	s.sealLocked(key, "linger")
}

// sealLocked closes the forming batch for key and hands it to the executor.
// Callers hold s.mu. The send cannot block: batchCh has capacity MaxPending
// and every queued batch carries at least one admitted request.
func (s *Service) sealLocked(key batchKey, by string) {
	q := s.pending[key]
	if q == nil || len(q.reqs) == 0 {
		return
	}
	if q.timer != nil {
		q.timer.Stop()
	}
	delete(s.pending, key)
	s.batchCh <- &batch{
		key:      key,
		reqs:     q.reqs,
		firstEnq: q.firstEnq,
		sealed:   time.Now(),
		sealedBy: by,
	}
}
