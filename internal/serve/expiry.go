package serve

import (
	"container/heap"
	"sort"

	"pimkd/internal/core"
)

// Streaming ingest tracks every ingested item with a logical expiry
// deadline (an int64 supplied by the client — not wall-clock time, so
// sweeps are deterministic and testable). The executor owns a min-heap of
// tracked entries; an expire request pops every entry with deadline ≤ its
// logical now and deletes those items from the tree as a normal write
// batch — in durable mode, WAL-logged before commit like any delete.
//
// The heap is volatile: after a crash recovery the tree's items are
// restored from snapshot+WAL but the expiry tracking is not (the WAL
// records inserts, not deadlines). Operators restarting a durable ingest
// workload should treat pre-crash entries as unexpirable or re-ingest.

// expiryEntry is one tracked ingest: the item and its logical deadline.
type expiryEntry struct {
	at   int64
	item core.Item
}

// expiryHeap is a min-heap on deadline; ties break on the canonical item
// order so pop order — and therefore per-request expired counts — is a
// function of the tracked multiset only.
type expiryHeap []expiryEntry

func (h expiryHeap) Len() int { return len(h) }
func (h expiryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return core.ItemLess(h[i].item, h[j].item)
}
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)         { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *expiryHeap) push(e expiryEntry) { heap.Push(h, e) }

// popDue removes and returns every entry with deadline ≤ now, in ascending
// (deadline, item) order.
func (h *expiryHeap) popDue(now int64) []expiryEntry {
	var due []expiryEntry
	for h.Len() > 0 && (*h)[0].at <= now {
		due = append(due, heap.Pop(h).(expiryEntry))
	}
	return due
}

// pushAll restores entries (used to roll back a sweep whose durable log
// append failed: nothing was deleted, so nothing may leave the tracker).
func (h *expiryHeap) pushAll(es []expiryEntry) {
	for _, e := range es {
		heap.Push(h, e)
	}
}

// entriesIn returns copies of the tracked entries selected by in (the
// half-open cell-membership test), sorted by the canonical (item, deadline)
// order peer-rebuild snapshots use. The heap is unchanged.
func (h expiryHeap) entriesIn(in func(core.Item) bool) []expiryEntry {
	var out []expiryEntry
	for _, e := range h {
		if in(e.item) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !core.ItemEq(out[i].item, out[j].item) {
			return core.ItemLess(out[i].item, out[j].item)
		}
		return out[i].at < out[j].at
	})
	return out
}

// tracks reports whether an entry with exactly this (item, deadline) is
// tracked. Linear scan: it backs the cluster's set-semantics ingest, whose
// rate is bounded by the wire path, not the local batch path.
func (h expiryHeap) tracks(item core.Item, at int64) bool {
	for _, e := range h {
		if e.at == at && core.ItemEq(e.item, item) {
			return true
		}
	}
	return false
}

// dropUnless removes every tracked entry keep rejects and re-establishes
// the heap invariant — the first half of a cell restore's expiry rebuild
// (the second half pushes the snapshot's entries).
func (h *expiryHeap) dropUnless(keep func(core.Item) bool) {
	old := *h
	out := old[:0]
	for _, e := range old {
		if keep(e.item) {
			out = append(out, e)
		}
	}
	*h = out
	heap.Init(h)
}
