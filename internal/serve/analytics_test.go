package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/mathx"
	"pimkd/internal/pim"
	"pimkd/internal/workload"
)

func TestJoinMatchesNaive(t *testing.T) {
	const n = 2000
	svc, pts := newTestService(t, n, Config{MaxBatch: 64, MaxLinger: time.Millisecond})
	defer svc.Close()

	probes := workload.Uniform(50, 2, 31)
	const radius = 0.05
	r2 := radius * radius

	var wg sync.WaitGroup
	got := make([][]core.Item, len(probes))
	for i := range probes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			items, _, err := svc.Join(context.Background(), probes[i], radius)
			if err != nil {
				t.Errorf("join %d: %v", i, err)
				return
			}
			got[i] = items
		}(i)
	}
	wg.Wait()

	for i, p := range probes {
		var want []core.Item
		for id, pt := range pts {
			if geom.Dist2(p, pt) <= r2 {
				want = append(want, core.Item{P: pt, ID: int32(id)})
			}
		}
		core.SortItems(want)
		if len(got[i]) != len(want) {
			t.Fatalf("probe %d: %d matches, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if !core.ItemEq(got[i][j], want[j]) {
				t.Fatalf("probe %d match %d: %+v != %+v", i, j, got[i][j], want[j])
			}
		}
	}

	// Invalid radii are rejected before admission.
	if _, _, err := svc.Join(context.Background(), probes[0], -1); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestAggregateMatchesNaiveBitIdentical(t *testing.T) {
	const n = 3000
	svc, pts := newTestService(t, n, Config{MaxBatch: 32, MaxLinger: time.Millisecond})
	defer svc.Close()

	boxes := []geom.Box{
		geom.NewBox(geom.Point{0.1, 0.1}, geom.Point{0.6, 0.4}),
		geom.NewBox(geom.Point{0, 0}, geom.Point{1, 1}),
		geom.NewBox(geom.Point{2, 2}, geom.Point{3, 3}), // empty
	}
	for bi, box := range boxes {
		agg, _, err := svc.Aggregate(context.Background(), box)
		if err != nil {
			t.Fatalf("aggregate %d: %v", bi, err)
		}
		var want core.BoxAggregate
		for id, pt := range pts {
			if box.Contains(pt) {
				it := core.Item{P: pt, ID: int32(id)}
				want.Count++
				_ = it
			}
		}
		if agg.Count != want.Count {
			t.Fatalf("box %d: count %d want %d", bi, agg.Count, want.Count)
		}
		// Centroid bit-identity against the naive sequential sum.
		cents := agg.Centroid()
		if want.Count == 0 {
			if cents != nil {
				t.Fatalf("box %d: centroid for empty window", bi)
			}
			continue
		}
		naive := naiveCentroid(pts, box)
		for d := range naive {
			if cents[d] != naive[d] {
				t.Fatalf("box %d dim %d: centroid %v != naive %v", bi, d, cents[d], naive[d])
			}
		}
	}
}

func naiveCentroid(pts []geom.Point, box geom.Box) []float64 {
	var count int64
	dim := len(box.Lo)
	sums := make([]mathx.ExactSum, dim)
	for _, pt := range pts {
		if box.Contains(pt) {
			count++
			for d := range pt {
				sums[d].Add(pt[d])
			}
		}
	}
	out := make([]float64, dim)
	for d := range out {
		out[d] = sums[d].Round() / float64(count)
	}
	return out
}

func TestIngestExpireLifecycle(t *testing.T) {
	svc, _ := newTestService(t, 500, Config{MaxBatch: 32, MaxLinger: time.Millisecond})
	defer svc.Close()
	ctx := context.Background()

	base := svc.TreeSize()
	// Ingest 60 items with deadlines 1..60.
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			it := core.Item{P: geom.Point{float64(i) / 100, 0.5}, ID: int32(9000 + i)}
			if _, err := svc.Ingest(ctx, it, int64(i+1)); err != nil {
				t.Errorf("ingest %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := svc.TreeSize(); got != base+60 {
		t.Fatalf("after ingest: size %d want %d", got, base+60)
	}

	// Sweep the first 20 deadlines.
	n, _, err := svc.Expire(ctx, 20)
	if err != nil {
		t.Fatalf("expire: %v", err)
	}
	if n != 20 {
		t.Fatalf("expire(20) swept %d, want 20", n)
	}
	if got := svc.TreeSize(); got != base+40 {
		t.Fatalf("after expire: size %d want %d", got, base+40)
	}
	// Sweeping the same horizon again is a no-op.
	if n, _, _ := svc.Expire(ctx, 20); n != 0 {
		t.Fatalf("second expire(20) swept %d, want 0", n)
	}
	// Sweep everything else.
	if n, _, _ := svc.Expire(ctx, 1000); n != 40 {
		t.Fatalf("expire(1000) swept %d, want 40", n)
	}
	if got := svc.TreeSize(); got != base {
		t.Fatalf("final size %d want %d", got, base)
	}

	// The expired items are really gone: a join at radius 0 on an ingested
	// coordinate finds nothing with the ingested ID.
	items, _, err := svc.Join(ctx, geom.Point{0.05, 0.5}, 0)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	for _, it := range items {
		if it.ID >= 9000 {
			t.Fatalf("expired item %d still present", it.ID)
		}
	}
}

func TestLatencyQuantilesExposed(t *testing.T) {
	svc, pts := newTestService(t, 300, Config{MaxBatch: 16, MaxLinger: time.Millisecond})
	defer svc.Close()
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if _, _, err := svc.Lookup(ctx, pts[i]); err != nil {
			t.Fatalf("lookup: %v", err)
		}
	}
	if _, _, err := svc.Join(ctx, pts[0], 0.01); err != nil {
		t.Fatalf("join: %v", err)
	}
	snap := svc.Metrics()
	found := map[string]bool{}
	for _, ks := range snap.Kinds {
		found[ks.Kind] = true
		if ks.LatencyCount == 0 {
			t.Fatalf("kind %s: no latency observations", ks.Kind)
		}
		if ks.P999US < ks.P50US || ks.P50US <= 0 {
			t.Fatalf("kind %s: implausible quantiles p50=%g p999=%g", ks.Kind, ks.P50US, ks.P999US)
		}
	}
	if !found["lookup"] || !found["join"] {
		t.Fatalf("missing kinds in snapshot: %v", found)
	}
	hs := svc.LatencyHistograms()
	if hs["lookup"] == nil || hs["lookup"].Count() != 40 {
		t.Fatalf("LatencyHistograms lookup count wrong: %+v", hs["lookup"])
	}
}

func TestExpireCoalescedMixedHorizons(t *testing.T) {
	// Two expire requests with different nows coalescing into one batch:
	// each gets the prefix count at its own horizon.
	mach := pim.NewMachine(4, 1<<20)
	tree := core.New(core.Config{Dim: 2, Seed: 3}, mach)
	tree.Build(nil)
	svc := New(Config{MaxBatch: 8, MaxLinger: 50 * time.Millisecond}, tree)
	defer svc.Close()
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		it := core.Item{P: geom.Point{float64(i), 0}, ID: int32(i)}
		if _, err := svc.Ingest(ctx, it, int64(i+1)); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	var wg sync.WaitGroup
	counts := make([]int, 2)
	nows := []int64{3, 7}
	for i := range nows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, _, err := svc.Expire(ctx, nows[i])
			if err != nil {
				t.Errorf("expire: %v", err)
			}
			counts[i] = n
		}(i)
	}
	wg.Wait()
	// Whether they coalesced or ran as two batches, the request at now=7
	// must observe ≥ the request at now=3, the total horizon is 7, and
	// after both the tree holds exactly the 3 unexpired items.
	if counts[0] > counts[1]+3 {
		t.Fatalf("counts %v inconsistent", counts)
	}
	if got := svc.TreeSize(); got != 3 {
		t.Fatalf("size %d want 3", got)
	}
}
