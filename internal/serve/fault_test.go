package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/pim"
)

// TestBatchPanicFailsOnlyAffectedBatch is the satellite-1 regression test:
// a query whose batch execution panics must fail with ErrBatchPanic while
// the executor, the service, and every other batch keep working.
func TestBatchPanicFailsOnlyAffectedBatch(t *testing.T) {
	svc, pts := newTestService(t, 512, Config{MaxBatch: 4, MaxLinger: time.Millisecond})
	defer svc.Close()

	var once sync.Once
	svc.testHookPreBatch = func(b *batch) {
		if b.key.kind == KindKNN {
			once.Do(func() { panic("poisoned query") })
		}
	}

	// The poisoned batch: every rider fails with ErrBatchPanic.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = svc.KNN(context.Background(), pts[i], 3)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrBatchPanic) {
			t.Fatalf("request %d: err = %v, want ErrBatchPanic", i, err)
		}
	}

	// The service survived: later batches (same kind included) succeed.
	if _, _, err := svc.KNN(context.Background(), pts[9], 3); err != nil {
		t.Fatalf("KNN after panic: %v", err)
	}
	if _, _, err := svc.Lookup(context.Background(), pts[10]); err != nil {
		t.Fatalf("Lookup after panic: %v", err)
	}
	if got := svc.Metrics().Robustness.BatchPanics; got != 1 {
		t.Fatalf("BatchPanics = %d, want 1", got)
	}
}

// TestCanceledContextReleasesSlot is the satellite-2 regression test: a
// caller whose context is canceled while its batch is still forming must
// release its admission slot immediately, not hold it until the linger
// deadline fires.
func TestCanceledContextReleasesSlot(t *testing.T) {
	// MaxPending 1: the canceled request's slot is the only slot, so the
	// follow-up request can only be admitted if cancellation released it.
	svc, pts := newTestService(t, 512, Config{
		MaxBatch:   64,
		MaxLinger:  time.Hour, // batches seal only when full — or at Close
		MaxPending: 1,
	})
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := svc.Lookup(ctx, pts[0])
		done <- err
	}()
	// Wait until the request is enqueued in a forming batch.
	deadline := time.Now().Add(2 * time.Second)
	for {
		svc.mu.Lock()
		n := len(svc.pending)
		svc.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never reached a forming batch")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled lookup returned %v", err)
	}

	// The slot must be free: this submission would otherwise block forever
	// on the admission semaphore (the forming batch never seals on linger).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	select {
	case svc.tokens <- struct{}{}:
		<-svc.tokens // probe only; give it back
	case <-ctx2.Done():
		t.Fatal("admission slot was not released by cancellation")
	}
	// And the forming batch no longer contains the withdrawn request.
	svc.mu.Lock()
	for key, q := range svc.pending {
		if len(q.reqs) != 0 {
			svc.mu.Unlock()
			t.Fatalf("forming batch %v still holds %d request(s)", key, len(q.reqs))
		}
	}
	svc.mu.Unlock()
	if got := svc.Metrics().Robustness.CanceledRequests; got != 1 {
		t.Fatalf("CanceledRequests = %d, want 1", got)
	}
}

// TestShedAboveHighWater: above the high-water mark submissions fail fast
// with ErrOverloaded, and the HTTP layer turns that into 503 + Retry-After.
func TestShedAboveHighWater(t *testing.T) {
	svc, pts := newTestService(t, 512, Config{
		MaxBatch:       64,
		MaxLinger:      time.Hour,
		MaxPending:     8,
		ShedHighWater:  2,
		ShedRetryAfter: 3 * time.Second,
	})
	defer svc.Close()

	// Park two requests in a forming batch that will never seal; they hold
	// two slots, reaching the high-water mark.
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _ = svc.Lookup(ctx, pts[i])
		}(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.tokens) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("parked requests never acquired their slots")
		}
		time.Sleep(time.Millisecond)
	}

	if _, _, err := svc.Lookup(context.Background(), pts[5]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submission above high water returned %v, want ErrOverloaded", err)
	}

	h := NewHandler(svc)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/lookup?p=0.5,0.5", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed HTTP status = %d, want 503", rr.Code)
	}
	if got := rr.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if got := svc.Metrics().Robustness.Sheds; got < 2 {
		t.Fatalf("Sheds = %d, want >= 2", got)
	}

	cancel()
	wg.Wait()
}

// faultNTimes escalates a module fault on the first n batch executions.
type faultNTimes struct {
	mu sync.Mutex
	n  int
}

func (f *faultNTimes) hook(b *batch) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n > 0 {
		f.n--
		panic(&pim.ModuleFault{Kind: pim.FaultCrash, Module: 1, Injected: true})
	}
}

// TestTransientFaultRetried: a read batch whose execution dies with a typed
// machine fault is re-executed and its callers see clean results.
func TestTransientFaultRetried(t *testing.T) {
	svc, pts := newTestService(t, 512, Config{
		MaxBatch:     4,
		MaxLinger:    time.Millisecond,
		RetryBackoff: time.Microsecond,
	})
	defer svc.Close()

	f := &faultNTimes{n: 1}
	svc.testHookPreBatch = f.hook

	ns, _, err := svc.KNN(context.Background(), pts[0], 3)
	if err != nil {
		t.Fatalf("KNN across transient fault: %v", err)
	}
	if len(ns) != 3 {
		t.Fatalf("got %d neighbors, want 3", len(ns))
	}
	rb := svc.Metrics().Robustness
	if rb.BatchFaults != 1 || rb.BatchRetries != 1 {
		t.Fatalf("robustness = %+v, want 1 fault and 1 retry", rb)
	}
}

// TestPersistentFaultSurfacesAfterRetries: when every retry faults too, the
// callers get ErrFault and the HTTP layer answers 503.
func TestPersistentFaultSurfacesAfterRetries(t *testing.T) {
	svc, pts := newTestService(t, 512, Config{
		MaxBatch:       4,
		MaxLinger:      time.Millisecond,
		RetryTransient: 1,
		RetryBackoff:   time.Microsecond,
	})
	defer svc.Close()

	f := &faultNTimes{n: 1 << 30} // never stops faulting
	svc.testHookPreBatch = f.hook

	_, _, err := svc.KNN(context.Background(), pts[0], 3)
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
	rb := svc.Metrics().Robustness
	if rb.BatchFaults != 2 || rb.BatchRetries != 1 {
		t.Fatalf("robustness = %+v, want 2 faults, 1 retry", rb)
	}

	svc.testHookPreBatch = nil
	if _, _, err := svc.KNN(context.Background(), pts[1], 3); err != nil {
		t.Fatalf("KNN after persistent fault cleared: %v", err)
	}
}

// TestWriteBatchFaultNotRetried: a faulted update batch must fail without
// re-execution (replaying a partially applied write could double-apply).
func TestWriteBatchFaultNotRetried(t *testing.T) {
	svc, pts := newTestService(t, 512, Config{
		MaxBatch:     4,
		MaxLinger:    time.Millisecond,
		RetryBackoff: time.Microsecond,
	})
	defer svc.Close()

	f := &faultNTimes{n: 1}
	svc.testHookPreBatch = f.hook

	_, err := svc.Insert(context.Background(), core.Item{P: pts[0], ID: 9001})
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault (no retry for writes)", err)
	}
	rb := svc.Metrics().Robustness
	if rb.BatchRetries != 0 {
		t.Fatalf("write batch was retried %d times", rb.BatchRetries)
	}
}

// TestDrainCompletesAdmittedRequests: Close flushes forming batches and
// every admitted request still gets a real reply (graceful drain).
func TestDrainCompletesAdmittedRequests(t *testing.T) {
	svc, pts := newTestService(t, 512, Config{MaxBatch: 64, MaxLinger: time.Hour})

	const inflight = 6
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = svc.Lookup(context.Background(), pts[i])
		}(i)
	}
	// Wait for all six to be admitted into the forming batch.
	deadline := time.Now().Add(2 * time.Second)
	for {
		svc.mu.Lock()
		n := 0
		for _, q := range svc.pending {
			n += len(q.reqs)
		}
		svc.mu.Unlock()
		if n == inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests never all formed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("drained request %d failed: %v", i, err)
		}
	}
}
