package serve

import (
	"context"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/persist"
	"pimkd/internal/pim"
	"pimkd/internal/workload"
)

// newDurableService opens a persist store in dir, builds the initial tree
// through it, and wraps it in a durable-write Service.
func newDurableService(t testing.TB, dir string, n int, cfg Config) (*Service, *persist.Store, *core.Tree) {
	t.Helper()
	const dim, p = 2, 8
	st, tree, _, err := persist.Open(dir, persist.Options{
		Machine: pim.NewMachine(p, 1<<20),
		Tree:    core.Config{Dim: dim, Seed: 11},
		Fsync:   false, // tests exercise ordering, not power-fail fsync
	})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	if n > 0 {
		pts := workload.Uniform(n, dim, 13)
		items := make([]core.Item, n)
		for i, pt := range pts {
			items[i] = core.Item{P: pt, ID: int32(i)}
		}
		tree.Build(items)
		// Make the bulk load durable: initial builds bypass the WAL, so
		// they are only recoverable once checkpointed.
		if err := st.Checkpoint(tree); err != nil {
			t.Fatalf("initial checkpoint: %v", err)
		}
	}
	cfg.Persist = st
	return New(cfg, tree), st, tree
}

func idsOf(items []core.Item) []int32 {
	ids := make([]int32, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestDurableWritesSurviveReopen drives acknowledged inserts and deletes
// through the service, closes everything cleanly, and proves a fresh Open
// reproduces the exact point set.
func TestDurableWritesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	svc, st, tree := newDurableService(t, dir, 200, Config{MaxBatch: 16, MaxLinger: 200 * time.Microsecond})

	extra := workload.Uniform(64, 2, 77)
	var wg sync.WaitGroup
	for i, pt := range extra {
		wg.Add(1)
		go func(i int, pt []float64) {
			defer wg.Done()
			if _, err := svc.Insert(context.Background(), core.Item{P: pt, ID: int32(1000 + i)}); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}(i, pt)
	}
	wg.Wait()
	for i := 0; i < 20; i++ {
		pts := workload.Uniform(200, 2, 13)
		if _, err := svc.Delete(context.Background(), core.Item{P: pts[i], ID: int32(i)}); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	want := idsOf(tree.Items())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, tree2, rec, err := persist.Open(dir, persist.Options{Machine: pim.NewMachine(8, 1<<20)})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !rec.Recovered {
		t.Fatal("nothing recovered")
	}
	if got := idsOf(tree2.Items()); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %d ids, want %d (sets differ)", len(got), len(want))
	}
	if tree2.Size() != 200+64-20 {
		t.Fatalf("recovered size %d, want 244", tree2.Size())
	}
}

// TestCloseFlushesInFlightCheckpoint is the drain regression test: Close
// must not return while a background checkpoint write is still running. A
// deliberately slow OnCheckpoint hook makes the in-flight window wide; after
// Close, every started checkpoint must have finished and no temp files may
// remain.
func TestCloseFlushesInFlightCheckpoint(t *testing.T) {
	dir := t.TempDir()
	var finished atomic.Int64
	st, tree, _, err := persist.Open(dir, persist.Options{
		Machine: pim.NewMachine(8, 1<<20),
		Tree:    core.Config{Dim: 2, Seed: 11},
		OnCheckpoint: func(ci persist.CheckpointInfo) {
			time.Sleep(20 * time.Millisecond) // widen the in-flight window
			finished.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{
		MaxBatch:        4,
		MaxLinger:       100 * time.Microsecond,
		Persist:         st,
		CheckpointEvery: 1, // checkpoint after every write batch
	}, tree)

	pts := workload.Uniform(40, 2, 5)
	var wg sync.WaitGroup
	for i, pt := range pts {
		wg.Add(1)
		go func(i int, pt []float64) {
			defer wg.Done()
			if _, err := svc.Insert(context.Background(), core.Item{P: pt, ID: int32(i)}); err != nil {
				t.Errorf("insert: %v", err)
			}
		}(i, pt)
	}
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	status := st.Status()
	if status.CheckpointsStarted == 0 {
		t.Fatal("no checkpoint ever started — trigger misconfigured")
	}
	if status.CheckpointsStarted != status.CheckpointsWritten {
		t.Fatalf("Close returned with checkpoint in flight: started=%d written=%d",
			status.CheckpointsStarted, status.CheckpointsWritten)
	}
	if int64(status.CheckpointsWritten) != finished.Load() {
		t.Fatalf("hook saw %d checkpoints, status says %d", finished.Load(), status.CheckpointsWritten)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s survived Close", e.Name())
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything acknowledged must be recoverable.
	_, tree2, _, err := persist.Open(dir, persist.Options{Machine: pim.NewMachine(8, 1<<20)})
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Size() != 40 {
		t.Fatalf("recovered %d items, want 40", tree2.Size())
	}
}

// TestPersistzEndpoint exercises the HTTP status surface.
func TestPersistzEndpoint(t *testing.T) {
	dir := t.TempDir()
	svc, st, _ := newDurableService(t, dir, 50, Config{MaxBatch: 4, MaxLinger: 100 * time.Microsecond})
	defer func() { svc.Close(); st.Close() }()

	if _, err := svc.Insert(context.Background(), core.Item{P: workload.Uniform(1, 2, 3)[0], ID: 9999}); err != nil {
		t.Fatal(err)
	}
	status, ok := svc.PersistStatus()
	if !ok {
		t.Fatal("PersistStatus reported disabled")
	}
	if status.LSN == 0 || status.SnapshotLSN != 0 {
		t.Fatalf("status: %+v", status)
	}
	if status.Appends == 0 {
		t.Fatal("no WAL appends counted")
	}
}

// TestPersistDisabledStatus covers the non-durable path of PersistStatus.
func TestPersistDisabledStatus(t *testing.T) {
	svc, _ := newTestService(t, 32, Config{MaxBatch: 4})
	defer svc.Close()
	if _, ok := svc.PersistStatus(); ok {
		t.Fatal("PersistStatus reported enabled without Config.Persist")
	}
}
