package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"pimkd/internal/geom"
	"pimkd/internal/pim"
	"pimkd/internal/shard"
)

// Rebuilder drives peer rebuild for one replicated shard: starting from
// whatever local state survived (possibly nothing — a wiped data dir), it
// pulls every hosted cell from a healthy peer replica over paginated
// CellSnapshot frames and applies each via one atomic RestoreCell, looping
// until a full pass changes nothing. Only then does it claim Synced, which
// is what lets the router route reads here and what gates the HTTP
// /readyz endpoint.
//
// Convergence under live writes: the router fans every write to all
// replicas of its cell — including this one, whose wire listener is up for
// the whole rebuild — and the cluster apply path is idempotent
// (InsertUnique / ignore-absent Delete). So the boot gap this shard missed
// while down is a frozen set only the snapshots can supply, while the live
// stream lands here and on the source identically. A pass that applies an
// empty diff for every cell therefore proves the local state equals the
// source's acked state at the snapshot cut; writes in flight across the
// cut apply idempotently on top on both sides.
//
// If no peer is both ready and synced for longer than Patience, the
// initial run serves the shard's local state: on a cold cluster boot every
// replica starts unsynced and would otherwise deadlock waiting on its
// peers. Nudged resyncs are stricter — see OnResync.
type Rebuilder struct {
	svc *Service
	cfg RebuildConfig

	clients map[int]*shard.Client
	synced  atomic.Bool

	// mu guards the run bookkeeping as one transition: a run completing
	// increments gen and clears inflight atomically, so OnResync's target
	// arithmetic never sees a run both completed (gen counted) and still
	// in flight (inflight set), or neither.
	mu       sync.Mutex
	gen      uint64 // completed convergence runs
	inflight bool   // a run is currently executing
	// resyncTarget is the highest generation any OnResync promised. While
	// gen lags it, Synced reports false even though the synced claim is
	// set: the shard was told it may have missed an acked write, so it
	// must not advertise itself as an authoritative rebuild source (a peer
	// pulling a stale cut would RestoreCell-delete the missed write from
	// its own copy) until a post-nudge run completes.
	resyncTarget uint64
	// pendingEvidenced records whether any not-yet-served nudge was
	// evidenced (the router watched this shard miss an acked write). The
	// run serving those nudges must then converge against a peer — the
	// Patience give-up path is forbidden, because completing it would
	// advance gen to the promised target and unfence the shard with the
	// missed write still absent.
	pendingEvidenced bool

	nudge chan struct{}
	stop  chan struct{}
	done  chan struct{}
}

// RebuildConfig wires a Rebuilder to its cluster slice.
type RebuildConfig struct {
	// Self is this shard's index; Peers[Self] is never dialed.
	Self int
	// Peers holds every shard's wire address, indexed by shard id. An
	// empty address is skipped.
	Peers []string
	// Cells are the cell ids this shard hosts; CellBoxes are the matching
	// half-open partition boxes.
	Cells     []int
	CellBoxes []geom.Box
	// Replicas returns a cell's replica shards in placement order (primary
	// first) — the pull-preference order.
	Replicas func(cell int) []int
	// Dim is the cluster dimensionality (for the wire handshake).
	Dim int
	// PageSize is the per-CellSnapshot page size in items (default 2048).
	PageSize int
	// Timeout bounds each wire call (default 5s).
	Timeout time.Duration
	// Patience is how long a convergence run keeps hunting for an eligible
	// peer before giving up the run (default 5s). The initial boot run and
	// precautionary resyncs then serve local state; a resync nudged for a
	// known missed write instead stays fenced and retries.
	Patience time.Duration
	// PassInterval is the pause between convergence passes (default 100ms):
	// long enough for in-flight writes from the last pass's snapshot window
	// to settle, short enough to converge quickly.
	PassInterval time.Duration
	// OnRebuilt, if set, observes each completed convergence run: how many
	// cells were pulled, how many items arrived over the wire, the exact
	// metered cost of the restore rounds (each labeled
	// fault/rebuild/cell=N), and how long the run took. The server wires
	// this to fault.Supervisor accounting.
	OnRebuilt func(cells, items int64, cost pim.Stats, took time.Duration)
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...any)
}

// NewRebuilder starts the rebuild loop. The initial convergence run begins
// immediately; Synced reports false until it completes.
func NewRebuilder(svc *Service, cfg RebuildConfig) *Rebuilder {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 2048
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 5 * time.Second
	}
	if cfg.PassInterval <= 0 {
		cfg.PassInterval = 100 * time.Millisecond
	}
	r := &Rebuilder{
		svc:     svc,
		cfg:     cfg,
		clients: map[int]*shard.Client{},
		nudge:   make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go r.run()
	return r
}

// Synced implements SyncState: the shard's sync claim and its generation.
// The generation changes exactly when a convergence run completes, so a
// router that fenced this shard as stale can tell a fresh convergence from
// the shard merely still believing its pre-fence state. The claim is
// withdrawn the moment a nudge arrives and restored only when the
// generation reaches the promised target — mirroring the router's fence on
// the shard itself, so rebuilding peers (which pick sources by this claim)
// never pull from a replica the router knows to be stale.
func (r *Rebuilder) Synced() (bool, uint64) {
	r.mu.Lock()
	gen := r.gen
	caughtUp := gen >= r.resyncTarget
	r.mu.Unlock()
	return r.synced.Load() && caughtUp, gen
}

// OnResync implements SyncState: it schedules another convergence run (the
// router nudges a shard it has fenced as stale) and returns the generation
// at which the nudge is proven served. A run already in flight may have
// snapshotted its peers before whatever write the router saw this shard
// miss, so the target is current generation + in-flight run (if any) + the
// nudged run: any run starting after this call begins after the miss, and
// the generation reaching the target proves such a run completed.
//
// evidenced=true marks a known miss: the runs serving this nudge must
// converge against an eligible peer — they never complete via the Patience
// give-up path, so the generation cannot reach the target (and neither the
// router's fence nor the local sync claim can lift) until the shard
// actually caught up.
func (r *Rebuilder) OnResync(evidenced bool) (uint64, bool) {
	r.mu.Lock()
	target := r.gen + 1
	if r.inflight {
		target++
	}
	if target > r.resyncTarget {
		r.resyncTarget = target
	}
	r.pendingEvidenced = r.pendingEvidenced || evidenced
	r.mu.Unlock()
	select {
	case r.nudge <- struct{}{}:
	default: // one is already pending; it too starts after this call
	}
	return target, true
}

// Close stops the loop and releases the peer connections.
func (r *Rebuilder) Close() {
	close(r.stop)
	<-r.done
	for _, c := range r.clients {
		c.Close()
	}
}

func (r *Rebuilder) run() {
	defer close(r.done)
	// The initial run may complete via the Patience path: on a cold boot
	// nothing has been acked without this shard, so its durable state is
	// authoritative when no peer turns up.
	r.convergeRun(false)
	r.synced.Store(true)
	for {
		select {
		case <-r.stop:
			return
		case <-r.nudge:
			// Serve every nudge delivered so far: an evidenced one forbids
			// the Patience give-up for this run (grab-and-clear, so a nudge
			// arriving mid-run keeps its own flag for the next run).
			r.mu.Lock()
			evidenced := r.pendingEvidenced
			r.pendingEvidenced = false
			r.mu.Unlock()
			r.convergeRun(evidenced)
		}
	}
}

// convergeRun brackets converge with the (gen, inflight) bookkeeping
// OnResync's target computation depends on: completing a run increments
// the generation and clears the in-flight flag in one transition.
//
// With mustConverge set (an evidenced nudge: the router watched this shard
// miss an acked write) the run completes only on a clean convergence pass
// — a Patience give-up retries instead of counting, because advancing the
// generation would let the router unfence a replica that never caught up,
// serve reads missing the acked write, and (worse) let a rebuilding peer
// pull the stale cut and RestoreCell-delete the write from the cluster's
// only remaining copy.
func (r *Rebuilder) convergeRun(mustConverge bool) {
	r.mu.Lock()
	r.inflight = true
	r.mu.Unlock()
	for !r.converge() && mustConverge {
		r.logf("rebuild: known missed write, staying fenced until a peer serves a clean pass")
		select {
		case <-r.stop:
			r.mu.Lock()
			r.inflight = false
			r.mu.Unlock()
			return
		case <-time.After(r.cfg.PassInterval):
		}
	}
	r.mu.Lock()
	r.gen++
	r.inflight = false
	r.mu.Unlock()
}

// hasPeers reports whether any hosted cell has a dialable peer replica.
// Without one (standalone shard, or replication factor 1) there is nothing
// to rebuild from and the shard serves its local state immediately instead
// of waiting out Patience.
func (r *Rebuilder) hasPeers() bool {
	for _, cell := range r.cfg.Cells {
		for _, p := range r.cfg.Replicas(cell) {
			if p != r.cfg.Self && p >= 0 && p < len(r.cfg.Peers) && r.cfg.Peers[p] != "" {
				return true
			}
		}
	}
	return false
}

// converge loops rebuild passes until one full pass pulls every hosted
// cell and changes nothing (returns true), or until Patience expires
// without a single fully-pulled pass (no eligible peer: returns false, the
// caller decides whether local state may be served).
func (r *Rebuilder) converge() bool {
	if !r.hasPeers() {
		// Standalone shard or replication factor 1: nothing to pull from,
		// the local state is authoritative by definition.
		return true
	}
	start := time.Now()
	deadline := start.Add(r.cfg.Patience)
	var cells, items int64
	var cost pim.Stats
	for pass := 1; ; pass++ {
		pulled, changed, pulledItems, passCost := r.pass()
		cells += pulled
		items += pulledItems
		cost = cost.Add(passCost)
		if pulled == int64(len(r.cfg.Cells)) {
			if !changed {
				r.logf("rebuild converged: pass %d clean (%d cells, %d items total, %v)",
					pass, cells, items, time.Since(start).Round(time.Millisecond))
				if r.cfg.OnRebuilt != nil {
					r.cfg.OnRebuilt(cells, items, cost, time.Since(start))
				}
				return true
			}
			deadline = time.Now().Add(r.cfg.Patience) // progress: keep going
		} else if time.Now().After(deadline) {
			r.logf("rebuild: no eligible peer for %v (%d cells pulled)",
				r.cfg.Patience, pulled)
			if r.cfg.OnRebuilt != nil && cells > 0 {
				r.cfg.OnRebuilt(cells, items, cost, time.Since(start))
			}
			return false
		}
		select {
		case <-r.stop:
			return false
		case <-time.After(r.cfg.PassInterval):
		}
	}
}

// pass pulls and restores every hosted cell once. It reports how many
// cells were successfully pulled, whether any restore changed local state,
// how many items arrived over the wire, and the metered cost of the
// restore rounds.
func (r *Rebuilder) pass() (pulled int64, changed bool, items int64, cost pim.Stats) {
	for i, cell := range r.cfg.Cells {
		select {
		case <-r.stop:
			return pulled, changed, items, cost
		default:
		}
		snap, ok, identical := r.pullCell(cell, r.cfg.CellBoxes[i])
		if !ok {
			continue
		}
		if identical {
			// Checksum fast path: the peer's digest matched ours, so a
			// restore would apply an empty diff. The cell counts as pulled
			// and unchanged without shipping its contents — a converged
			// rebuild's final verification pass costs one checksum per cell
			// instead of re-streaming the full share.
			pulled++
			continue
		}
		chg, info, err := r.svc.RestoreCell(context.Background(), cell, r.cfg.CellBoxes[i], snap)
		if err != nil {
			r.logf("rebuild: restore cell %d: %v", cell, err)
			continue
		}
		pulled++
		items += int64(len(snap.Items))
		cost = cost.Add(info.Cost)
		if chg {
			changed = true
		}
	}
	return pulled, changed, items, cost
}

// pullCell streams one cell from the first eligible peer in placement
// order. A peer is eligible when its pong reports Ready and Synced — and
// because a nudged peer withdraws its Synced claim until it provably
// caught up (see Synced), a replica the router fenced for missing an
// acked write stops being a pull source as soon as the nudge reaches it,
// rather than advertising its stale cut as authoritative. A wire error
// mid-stream abandons that peer entirely — nothing has been applied, so a
// torn stream can never leave a partially-restored cell.
//
// Before streaming, the peer's cell checksum is compared against the local
// one: a match means a restore would apply an empty diff, and pullCell
// reports the cell identical (pulled, no snapshot) instead of paying the
// paginated transfer. Writes landing between the two checksum cuts are
// fanned to both replicas and apply idempotently, so the skip proves
// convergence at the cut exactly as an empty restore diff would.
func (r *Rebuilder) pullCell(cell int, box geom.Box) (snap CellSnapshot, ok, identical bool) {
	for _, p := range r.cfg.Replicas(cell) {
		if p == r.cfg.Self || p < 0 || p >= len(r.cfg.Peers) || r.cfg.Peers[p] == "" {
			continue
		}
		c := r.client(p)
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
		pong, err := c.Ping(ctx)
		cancel()
		if err != nil || !pong.Ready || !pong.Synced {
			continue
		}
		if local, _, err := r.svc.ChecksumCell(context.Background(), cell, box); err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
			sums, err := c.CellChecksums(ctx, []int{cell}, []geom.Box{box})
			cancel()
			if err == nil && sums[0] == local {
				return CellSnapshot{}, true, true
			}
		}
		if snap, ok := r.pullFrom(c, cell, box); ok {
			return snap, true, false
		}
	}
	return CellSnapshot{}, false, false
}

// pullFrom paginates one cell off one peer. A Total that changes between
// pages means the cell moved underneath the stream; the pull restarts from
// offset 0 (bounded retries) rather than stitching inconsistent pages.
func (r *Rebuilder) pullFrom(c *shard.Client, cell int, box geom.Box) (CellSnapshot, bool) {
	for attempt := 0; attempt < 3; attempt++ {
		var snap CellSnapshot
		var total uint64
		offset := uint64(0)
		consistent := true
		for {
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
			resp, err := c.CellSnapshot(ctx, cell, box, offset, r.cfg.PageSize)
			cancel()
			if err != nil {
				r.logf("rebuild: snapshot cell %d from %s: %v", cell, c.Addr(), err)
				return CellSnapshot{}, false
			}
			if offset == 0 {
				total = resp.Total
			} else if resp.Total != total {
				consistent = false
				break
			}
			snap.Items = append(snap.Items, resp.Items...)
			snap.Deadlines = append(snap.Deadlines, resp.ExpireAts...)
			offset += uint64(len(resp.Items))
			if offset >= total {
				snap.Orphans = resp.Orphans
				snap.OrphanAts = resp.OrphanAts
				return snap, true
			}
			if len(resp.Items) == 0 {
				// The peer owes more items but sent none: treat as torn.
				return CellSnapshot{}, false
			}
		}
		if !consistent {
			continue
		}
	}
	r.logf("rebuild: cell %d kept changing under the stream, retrying later", cell)
	return CellSnapshot{}, false
}

func (r *Rebuilder) client(p int) *shard.Client {
	if c, ok := r.clients[p]; ok {
		return c
	}
	c := shard.NewClient(r.cfg.Peers[p], r.cfg.Dim)
	r.clients[p] = c
	return c
}

func (r *Rebuilder) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Ensure Rebuilder satisfies the listener's sync surface.
var _ SyncState = (*Rebuilder)(nil)
