package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/heapx"
	"pimkd/internal/mathx"
	"pimkd/internal/pim"
	"pimkd/internal/shard"
)

// ShardListener serves the binary shard wire protocol (package shard) over
// a TCP listener, backed by a Service. Each accepted connection is
// synchronous — one frame in, one frame out — matching the router client's
// one-in-flight-per-conn contract. Multi-element requests (several query
// points or items in one frame) are submitted to the Service concurrently,
// so they coalesce into batches exactly like concurrent HTTP requests.
type ShardListener struct {
	svc *Service
	ln  net.Listener
	// ready gates data traffic: while it reports false (WAL replay still
	// running) pings answer Ready=false and data requests are refused with
	// CodeNotReady. nil means always ready.
	ready func() bool
	// syncst reports the shard's replication sync state and accepts resync
	// nudges. nil means permanently synced at generation 0 — correct for a
	// standalone shard with no peers to rebuild from.
	syncst SyncState
	// onMigrate, when set, observes every applied migration commit (staged
	// item count, the adopt batch's metered cost, wall time) — the server
	// wires it to fault.Supervisor.RecordMigration. Set before traffic.
	onMigrate func(items int64, cost pim.Stats, took time.Duration)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// SyncState is the replication sync surface a shard exposes over the wire:
// whether it holds every acked write of its hosted cells (pongs carry the
// claim plus a generation that increments on each completed convergence
// pass), and a hook for the router to nudge a fenced-as-stale shard into
// another peer-rebuild pass.
type SyncState interface {
	// Synced returns the shard's own sync claim and its generation.
	Synced() (bool, uint64)
	// OnResync asks for another convergence pass. Evidenced tells the
	// shard the router watched it miss an acked write (the pass must then
	// converge against a peer; a precautionary pass may fall back to local
	// state). It returns the sync generation that proves a pass begun
	// after this call has completed (so the caller can wait out a pass
	// that was already in flight), and whether a pass was scheduled.
	OnResync(evidenced bool) (uint64, bool)
}

// NewShardListener starts serving the shard wire protocol on ln. The
// listener owns ln; Close closes it and every live connection. syncst may
// be nil (standalone shard: always synced, never resyncs).
func NewShardListener(svc *Service, ln net.Listener, ready func() bool, syncst SyncState) *ShardListener {
	sl := &ShardListener{svc: svc, ln: ln, ready: ready, syncst: syncst, conns: map[net.Conn]struct{}{}}
	sl.wg.Add(1)
	go sl.acceptLoop()
	return sl
}

// Addr returns the listener's bound address.
func (sl *ShardListener) Addr() net.Addr { return sl.ln.Addr() }

// SetMigrationObserver installs the migration-commit observer. Call before
// the shard takes traffic; the listener reads it without locking.
func (sl *ShardListener) SetMigrationObserver(fn func(items int64, cost pim.Stats, took time.Duration)) {
	sl.onMigrate = fn
}

// Close stops accepting, closes every live connection, and waits for the
// handlers to exit.
func (sl *ShardListener) Close() error {
	sl.mu.Lock()
	if sl.closed {
		sl.mu.Unlock()
		sl.wg.Wait()
		return nil
	}
	sl.closed = true
	err := sl.ln.Close()
	for c := range sl.conns {
		c.Close()
	}
	sl.mu.Unlock()
	sl.wg.Wait()
	return err
}

func (sl *ShardListener) acceptLoop() {
	defer sl.wg.Done()
	for {
		nc, err := sl.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sl.mu.Lock()
		if sl.closed {
			sl.mu.Unlock()
			nc.Close()
			return
		}
		sl.conns[nc] = struct{}{}
		sl.wg.Add(1)
		sl.mu.Unlock()
		go sl.handleConn(nc)
	}
}

func (sl *ShardListener) isReady() bool { return sl.ready == nil || sl.ready() }

// snapStash is one connection's cached cell-snapshot cut. A puller pages
// one cell over one synchronous conn, so caching the cut between pages
// both avoids recomputing (and re-sorting) the whole cell per page —
// O(n²/pageSize) executor work otherwise — and guarantees every page of
// one pull comes from a single consistent cut, which balanced
// insert+delete churn between fresh cuts could defeat (Total stays equal
// while the contents drift). The stash lives on the conn's handler
// goroutine only; no locking.
type snapStash struct {
	valid bool
	cell  int
	snap  CellSnapshot
}

// migStash is one connection's in-progress migration stage: the pages
// streamed between MigrateBegin and MigrateCommit. Like snapStash it lives
// on the conn's handler goroutine only, so a dropped conn discards the
// stage and a torn migration stream applies nothing — commit is the only
// frame that touches the service.
type migStash struct {
	valid bool
	epoch uint64
	cell  int
	box   geom.Box
	total uint64
	items []core.Item
	ats   []int64
}

func (sl *ShardListener) handleConn(nc net.Conn) {
	defer sl.wg.Done()
	defer func() {
		sl.mu.Lock()
		delete(sl.conns, nc)
		sl.mu.Unlock()
		nc.Close()
	}()
	dim := sl.svc.Dim()
	if err := shard.WriteHandshake(nc, dim); err != nil {
		return
	}
	var stash snapStash
	var mig migStash
	for {
		payload, err := shard.ReadFrame(nc)
		if err != nil {
			return // EOF, conn error, or unparseable framing: drop the conn
		}
		reqID, m, err := shard.DecodePayload(payload, dim)
		if err != nil {
			// Structurally corrupt payload: the stream can no longer be
			// trusted, mirror the client's poison-on-error rule.
			return
		}
		resp := sl.dispatch(m, &stash, &mig)
		if _, err := nc.Write(shard.EncodeFrame(reqID, resp, dim)); err != nil {
			return
		}
	}
}

// dispatch executes one decoded request and returns the response message
// (possibly a *shard.RemoteError). stash carries the connection's cached
// cell-snapshot cut across sequential CellSnapshot pages; mig carries its
// in-progress migration stage.
func (sl *ShardListener) dispatch(m any, stash *snapStash, mig *migStash) any {
	ready := sl.isReady()
	// Ping, cell snapshots, and resync nudges are exempt from the ready
	// gate: a recovering shard must still report status and serve rebuild
	// pulls from its durable state, and a fenced shard must accept nudges.
	switch m.(type) {
	case shard.Ping, shard.CellSnapshotReq, shard.ResyncReq:
	default:
		if !ready {
			return &shard.RemoteError{Code: shard.CodeNotReady, Msg: "recovery in progress"}
		}
	}
	// While the shard is rebuilding it must keep absorbing writes (the
	// router fans every write to all replicas so the live stream converges)
	// and answering pings, nudges, and stats — but it must refuse anything
	// whose answer depends on holding the complete cell contents: reads,
	// expiry sweeps, and snapshot serving. The router plans around synced
	// replicas, so this gate only fires when its view is momentarily stale;
	// refusing keeps every served answer exact. Migration frames are exempt
	// like updates: an adopt (or a purge — an exact-set to empty) is the
	// rebalancer repairing state, and exact-set semantics make it safe on a
	// rebuilding replica, just like the fanned write stream.
	switch m.(type) {
	case shard.Ping, shard.ResyncReq, shard.UpdateReq, shard.IngestReq, shard.StatsReq,
		shard.MigrateBegin, shard.MigratePage, shard.MigrateCommit:
	default:
		if synced, _ := sl.syncState(); !synced {
			return &shard.RemoteError{Code: shard.CodeNotReady, Msg: "replica rebuilding, not in sync"}
		}
	}
	ctx := context.Background()
	switch req := m.(type) {
	case shard.Ping:
		synced, gen := sl.syncState()
		return shard.Pong{Ready: ready, Size: sl.svc.TreeSize(), Synced: synced, SyncGen: gen}

	case shard.KNNReq:
		results := make([][]heapx.Candidate, len(req.Points))
		err := sl.scatter(len(req.Points), func(i int) error {
			cands, _, err := sl.svc.KNNCandidates(ctx, req.Points[i], req.K)
			results[i] = cands
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.KNNResp{Results: results}

	case shard.RangeReq:
		results := make([][]core.Item, len(req.Boxes))
		err := sl.scatter(len(req.Boxes), func(i int) error {
			items, _, err := sl.svc.Range(ctx, req.Boxes[i])
			results[i] = items
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.RangeResp{Results: results}

	case shard.UpdateReq:
		// Cluster writes are idempotent (set semantics): the router fans
		// each write to every replica of its cell, and a replica mid-rebuild
		// may receive an item both from the live stream and from a restored
		// peer snapshot. InsertUnique/ignore-absent-Delete make the second
		// application a no-op, so the race cannot double-apply.
		err := sl.scatter(len(req.Items), func(i int) error {
			if req.Delete {
				_, err := sl.svc.Delete(ctx, req.Items[i])
				return err
			}
			_, err := sl.svc.InsertUnique(ctx, req.Items[i])
			return err
		})
		if err != nil {
			// Refused in whole or in part: the error response means "not
			// acked" to the router, which never retries updates blindly.
			return remoteError(err)
		}
		return shard.UpdateResp{Applied: len(req.Items)}

	case shard.JoinReq:
		results := make([][]core.Item, len(req.Points))
		err := sl.scatter(len(req.Points), func(i int) error {
			items, _, err := sl.svc.Join(ctx, req.Points[i], req.Radius)
			results[i] = items
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.RangeResp{Results: results}

	case shard.AggReq:
		results := make([]core.BoxAggregate, len(req.Boxes))
		err := sl.scatter(len(req.Boxes), func(i int) error {
			agg, _, err := sl.svc.Aggregate(ctx, req.Boxes[i])
			results[i] = agg
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.AggResp{Results: results}

	case shard.IngestReq:
		if len(req.ExpireAts) != len(req.Items) {
			return &shard.RemoteError{Code: shard.CodeBadRequest, Msg: "ingest deadline count mismatch"}
		}
		err := sl.scatter(len(req.Items), func(i int) error {
			_, err := sl.svc.IngestUnique(ctx, req.Items[i], req.ExpireAts[i])
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.UpdateResp{Applied: len(req.Items)}

	case shard.ExpireReq:
		n, _, err := sl.svc.Expire(ctx, req.Now)
		if err != nil {
			return remoteError(err)
		}
		return shard.ExpireResp{Expired: int64(n)}

	case shard.StatsReq:
		hs := sl.svc.LatencyHistograms()
		names := make([]string, 0, len(hs))
		for k := range hs {
			names = append(names, k)
		}
		sort.Strings(names)
		resp := shard.StatsResp{Kinds: make([]shard.KindLatency, 0, len(names))}
		for _, name := range names {
			h := hs[name]
			kl := shard.KindLatency{Kind: name, Max: h.Max()}
			h.Buckets(func(low, count int64) {
				kl.Buckets = append(kl.Buckets, shard.HistBucket{Low: low, Count: count})
			})
			resp.Kinds = append(resp.Kinds, kl)
		}
		return resp

	case shard.CellSnapshotReq:
		// Offset 0 starts a pull: cut the cell fresh and stash the cut.
		// Later offsets of the same cell serve from the stash, so every
		// page of one pull slices one consistent cut and the executor
		// walks the cell once per pull, not once per page. A continuation
		// with no matching stash (client reconnected mid-pull, or an
		// out-of-order prober) falls back to a fresh cut; the puller's
		// Total-equality check handles the ensuing inconsistency.
		var snap CellSnapshot
		if req.Offset > 0 && stash.valid && stash.cell == req.Cell {
			snap = stash.snap
		} else {
			var err error
			snap, _, err = sl.svc.SnapshotCell(ctx, req.Cell, req.Box)
			if err != nil {
				return remoteError(err)
			}
		}
		total := uint64(len(snap.Items))
		lo := req.Offset
		if lo > total {
			lo = total
		}
		hi := total
		if req.Limit > 0 && lo+uint64(req.Limit) < hi {
			hi = lo + uint64(req.Limit)
		}
		if hi == total {
			stash.valid = false
			stash.snap = CellSnapshot{}
		} else {
			*stash = snapStash{valid: true, cell: req.Cell, snap: snap}
		}
		resp := shard.CellSnapshotResp{
			Total:     total,
			Items:     snap.Items[lo:hi],
			ExpireAts: snap.Deadlines[lo:hi],
		}
		if hi == total {
			// Final page: orphaned expiry entries ride along so the puller
			// can reproduce the expiry heap exactly.
			resp.Orphans = snap.Orphans
			resp.OrphanAts = snap.OrphanAts
		}
		return resp

	case shard.MigrateBegin:
		// A fresh Begin replaces any stage this conn had: the rebalancer
		// pins one conn per destination per migration, so an abandoned
		// stage has no owner to resume it.
		*mig = migStash{valid: true, epoch: req.Epoch, cell: req.Cell, box: req.Box, total: req.Total}
		return shard.MigrateResp{}

	case shard.MigratePage:
		if !mig.valid || mig.epoch != req.Epoch || mig.cell != req.Cell {
			*mig = migStash{}
			return &shard.RemoteError{Code: shard.CodeBadRequest, Msg: "migration page without matching begin"}
		}
		if req.Offset != uint64(len(mig.items)) || uint64(len(mig.items))+uint64(len(req.Items)) > mig.total {
			// Out-of-sequence page: the stream is torn. Drop the stage so a
			// later commit cannot apply a gap-riddled cut.
			*mig = migStash{}
			return &shard.RemoteError{Code: shard.CodeBadRequest, Msg: "migration page out of sequence"}
		}
		mig.items = append(mig.items, req.Items...)
		mig.ats = append(mig.ats, req.ExpireAts...)
		return shard.MigrateResp{}

	case shard.MigrateCommit:
		if !mig.valid || mig.epoch != req.Epoch || mig.cell != req.Cell {
			*mig = migStash{}
			return &shard.RemoteError{Code: shard.CodeBadRequest, Msg: "migration commit without matching begin"}
		}
		if uint64(len(mig.items)) != mig.total {
			staged, total := len(mig.items), mig.total
			*mig = migStash{}
			return &shard.RemoteError{Code: shard.CodeBadRequest,
				Msg: fmt.Sprintf("torn migration stage: %d of %d items staged", staged, total)}
		}
		snap := CellSnapshot{Items: mig.items, Deadlines: mig.ats, Orphans: req.Orphans, OrphanAts: req.OrphanAts}
		box := mig.box
		staged := len(mig.items)
		*mig = migStash{} // single-shot: the stage is consumed either way
		start := time.Now()
		changed, info, err := sl.svc.MigrateCell(ctx, req.Cell, box, snap, req.Ops)
		if err != nil {
			return remoteError(err)
		}
		if sl.onMigrate != nil {
			sl.onMigrate(int64(staged), info.Cost, time.Since(start))
		}
		return shard.MigrateResp{Changed: changed}

	case shard.CellChecksumReq:
		// Behind both gates (unlike CellSnapshotReq): a checksum is a claim
		// about the *complete* cell contents, which a recovering or
		// rebuilding shard cannot make. The anti-entropy sweep and the
		// rebuilder both only ask replicas whose pong is Ready and Synced.
		sums := make([]shard.CellChecksum, len(req.Cells))
		err := sl.scatter(len(req.Cells), func(i int) error {
			csum, _, err := sl.svc.ChecksumCell(ctx, req.Cells[i], req.Boxes[i])
			sums[i] = csum
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.CellChecksumResp{Sums: sums}

	case shard.ResyncReq:
		if sl.syncst == nil {
			// Standalone shard: nothing to resync from; the router must not
			// wait on a generation that will never advance.
			return shard.ResyncResp{Started: false}
		}
		target, started := sl.syncst.OnResync(req.Evidenced)
		return shard.ResyncResp{Started: started, Target: target}

	case shard.AggCellsReq:
		items, _, err := sl.svc.Range(ctx, req.Box)
		if err != nil {
			return remoteError(err)
		}
		// Accumulate only the items owned by this shard's assigned cells.
		// ExactSum is order-independent, so filtering then adding per item
		// merges bit-identically with the other shards' partials.
		agg := core.BoxAggregate{Sums: make([]mathx.ExactSum, sl.svc.Dim())}
		for _, it := range items {
			for _, cell := range req.Cells {
				if cell.ContainsHalfOpen(it.P) {
					agg.Count++
					for d := range it.P {
						agg.Sums[d].Add(it.P[d])
					}
					break
				}
			}
		}
		return shard.AggResp{Results: []core.BoxAggregate{agg}}
	}
	return &shard.RemoteError{Code: shard.CodeBadRequest, Msg: "unexpected request type"}
}

// syncState answers the pong's sync fields: the hook's claim, or the
// standalone default (synced at generation 0) when no hook is installed.
func (sl *ShardListener) syncState() (bool, uint64) {
	if sl.syncst == nil {
		return true, 0
	}
	return sl.syncst.Synced()
}

// scatter runs n sub-operations concurrently (so they coalesce in the
// Service like independent requests) and returns the first error.
func (sl *ShardListener) scatter(n int, op func(i int) error) error {
	if n == 1 {
		return op(0) // the router's common case: no goroutine overhead
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = op(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// remoteError maps a Service error to the wire error taxonomy: transient
// load/fault conditions are retryable CodeUnavailable, shard-side bugs are
// CodeInternal, everything else (dimension mismatch, bad k) is the caller's
// CodeBadRequest.
func remoteError(err error) *shard.RemoteError {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed), errors.Is(err, ErrFault),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return &shard.RemoteError{Code: shard.CodeUnavailable, Msg: err.Error()}
	case errors.Is(err, ErrBatchPanic), errors.Is(err, ErrPersist):
		return &shard.RemoteError{Code: shard.CodeInternal, Msg: err.Error()}
	default:
		return &shard.RemoteError{Code: shard.CodeBadRequest, Msg: err.Error()}
	}
}
