package serve

import (
	"context"
	"errors"
	"net"
	"sort"
	"sync"

	"pimkd/internal/core"
	"pimkd/internal/heapx"
	"pimkd/internal/shard"
)

// ShardListener serves the binary shard wire protocol (package shard) over
// a TCP listener, backed by a Service. Each accepted connection is
// synchronous — one frame in, one frame out — matching the router client's
// one-in-flight-per-conn contract. Multi-element requests (several query
// points or items in one frame) are submitted to the Service concurrently,
// so they coalesce into batches exactly like concurrent HTTP requests.
type ShardListener struct {
	svc *Service
	ln  net.Listener
	// ready gates data traffic: while it reports false (WAL replay still
	// running) pings answer Ready=false and data requests are refused with
	// CodeNotReady. nil means always ready.
	ready func() bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewShardListener starts serving the shard wire protocol on ln. The
// listener owns ln; Close closes it and every live connection.
func NewShardListener(svc *Service, ln net.Listener, ready func() bool) *ShardListener {
	sl := &ShardListener{svc: svc, ln: ln, ready: ready, conns: map[net.Conn]struct{}{}}
	sl.wg.Add(1)
	go sl.acceptLoop()
	return sl
}

// Addr returns the listener's bound address.
func (sl *ShardListener) Addr() net.Addr { return sl.ln.Addr() }

// Close stops accepting, closes every live connection, and waits for the
// handlers to exit.
func (sl *ShardListener) Close() error {
	sl.mu.Lock()
	if sl.closed {
		sl.mu.Unlock()
		sl.wg.Wait()
		return nil
	}
	sl.closed = true
	err := sl.ln.Close()
	for c := range sl.conns {
		c.Close()
	}
	sl.mu.Unlock()
	sl.wg.Wait()
	return err
}

func (sl *ShardListener) acceptLoop() {
	defer sl.wg.Done()
	for {
		nc, err := sl.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sl.mu.Lock()
		if sl.closed {
			sl.mu.Unlock()
			nc.Close()
			return
		}
		sl.conns[nc] = struct{}{}
		sl.wg.Add(1)
		sl.mu.Unlock()
		go sl.handleConn(nc)
	}
}

func (sl *ShardListener) isReady() bool { return sl.ready == nil || sl.ready() }

func (sl *ShardListener) handleConn(nc net.Conn) {
	defer sl.wg.Done()
	defer func() {
		sl.mu.Lock()
		delete(sl.conns, nc)
		sl.mu.Unlock()
		nc.Close()
	}()
	dim := sl.svc.Dim()
	if err := shard.WriteHandshake(nc, dim); err != nil {
		return
	}
	for {
		payload, err := shard.ReadFrame(nc)
		if err != nil {
			return // EOF, conn error, or unparseable framing: drop the conn
		}
		reqID, m, err := shard.DecodePayload(payload, dim)
		if err != nil {
			// Structurally corrupt payload: the stream can no longer be
			// trusted, mirror the client's poison-on-error rule.
			return
		}
		resp := sl.dispatch(m)
		if _, err := nc.Write(shard.EncodeFrame(reqID, resp, dim)); err != nil {
			return
		}
	}
}

// dispatch executes one decoded request and returns the response message
// (possibly a *shard.RemoteError).
func (sl *ShardListener) dispatch(m any) any {
	ready := sl.isReady()
	if _, ok := m.(shard.Ping); !ok && !ready {
		return &shard.RemoteError{Code: shard.CodeNotReady, Msg: "recovery in progress"}
	}
	ctx := context.Background()
	switch req := m.(type) {
	case shard.Ping:
		return shard.Pong{Ready: ready, Size: sl.svc.TreeSize()}

	case shard.KNNReq:
		results := make([][]heapx.Candidate, len(req.Points))
		err := sl.scatter(len(req.Points), func(i int) error {
			cands, _, err := sl.svc.KNNCandidates(ctx, req.Points[i], req.K)
			results[i] = cands
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.KNNResp{Results: results}

	case shard.RangeReq:
		results := make([][]core.Item, len(req.Boxes))
		err := sl.scatter(len(req.Boxes), func(i int) error {
			items, _, err := sl.svc.Range(ctx, req.Boxes[i])
			results[i] = items
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.RangeResp{Results: results}

	case shard.UpdateReq:
		err := sl.scatter(len(req.Items), func(i int) error {
			if req.Delete {
				_, err := sl.svc.Delete(ctx, req.Items[i])
				return err
			}
			_, err := sl.svc.Insert(ctx, req.Items[i])
			return err
		})
		if err != nil {
			// Refused in whole or in part: the error response means "not
			// acked" to the router, which never retries updates blindly.
			return remoteError(err)
		}
		return shard.UpdateResp{Applied: len(req.Items)}

	case shard.JoinReq:
		results := make([][]core.Item, len(req.Points))
		err := sl.scatter(len(req.Points), func(i int) error {
			items, _, err := sl.svc.Join(ctx, req.Points[i], req.Radius)
			results[i] = items
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.RangeResp{Results: results}

	case shard.AggReq:
		results := make([]core.BoxAggregate, len(req.Boxes))
		err := sl.scatter(len(req.Boxes), func(i int) error {
			agg, _, err := sl.svc.Aggregate(ctx, req.Boxes[i])
			results[i] = agg
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.AggResp{Results: results}

	case shard.IngestReq:
		if len(req.ExpireAts) != len(req.Items) {
			return &shard.RemoteError{Code: shard.CodeBadRequest, Msg: "ingest deadline count mismatch"}
		}
		err := sl.scatter(len(req.Items), func(i int) error {
			_, err := sl.svc.Ingest(ctx, req.Items[i], req.ExpireAts[i])
			return err
		})
		if err != nil {
			return remoteError(err)
		}
		return shard.UpdateResp{Applied: len(req.Items)}

	case shard.ExpireReq:
		n, _, err := sl.svc.Expire(ctx, req.Now)
		if err != nil {
			return remoteError(err)
		}
		return shard.ExpireResp{Expired: int64(n)}

	case shard.StatsReq:
		hs := sl.svc.LatencyHistograms()
		names := make([]string, 0, len(hs))
		for k := range hs {
			names = append(names, k)
		}
		sort.Strings(names)
		resp := shard.StatsResp{Kinds: make([]shard.KindLatency, 0, len(names))}
		for _, name := range names {
			h := hs[name]
			kl := shard.KindLatency{Kind: name, Max: h.Max()}
			h.Buckets(func(low, count int64) {
				kl.Buckets = append(kl.Buckets, shard.HistBucket{Low: low, Count: count})
			})
			resp.Kinds = append(resp.Kinds, kl)
		}
		return resp
	}
	return &shard.RemoteError{Code: shard.CodeBadRequest, Msg: "unexpected request type"}
}

// scatter runs n sub-operations concurrently (so they coalesce in the
// Service like independent requests) and returns the first error.
func (sl *ShardListener) scatter(n int, op func(i int) error) error {
	if n == 1 {
		return op(0) // the router's common case: no goroutine overhead
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = op(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// remoteError maps a Service error to the wire error taxonomy: transient
// load/fault conditions are retryable CodeUnavailable, shard-side bugs are
// CodeInternal, everything else (dimension mismatch, bad k) is the caller's
// CodeBadRequest.
func remoteError(err error) *shard.RemoteError {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed), errors.Is(err, ErrFault),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return &shard.RemoteError{Code: shard.CodeUnavailable, Msg: err.Error()}
	case errors.Is(err, ErrBatchPanic), errors.Is(err, ErrPersist):
		return &shard.RemoteError{Code: shard.CodeInternal, Msg: err.Error()}
	default:
		return &shard.RemoteError{Code: shard.CodeBadRequest, Msg: err.Error()}
	}
}
