package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/persist"
	"pimkd/internal/pim"
)

// runExecutor is the scheduling loop. It is the only goroutine that touches
// the tree, so batches — and in particular the partial reconstructions
// performed by update batches — are serialized: a read batch either runs
// entirely before or entirely after any rebuild, never across one.
//
// Epochs make that ordering observable: consecutive read batches share an
// epoch number, while every write batch closes the current epoch and takes
// a fresh one of its own, so two requests with the same epoch are
// guaranteed to have seen the identical tree version.
func (s *Service) runExecutor() {
	defer close(s.done)
	// Detach the tracer before done is signalled so a caller regaining
	// ownership of the tree after Close gets an unobserved machine back.
	defer func() {
		if s.tracer != nil {
			s.tree.Machine().SetObserver(nil)
		}
	}()
	// Durable-write drain (runs first): by the time the batch channel is
	// closed and drained, every acknowledged write is logged and committed;
	// finish any in-flight checkpoint and sync the WAL before signalling
	// done, so Close returning means the durable state is settled on disk.
	defer s.drainPersist()
	var (
		epoch        int64 = 1
		lastWasWrite bool
	)
	for b := range s.batchCh {
		write := !b.key.kind.IsRead()
		if write || lastWasWrite {
			epoch++
		}
		lastWasWrite = write
		s.execute(b, epoch)
	}
}

// execute runs one sealed batch against the tree, brackets it with machine
// snapshots for cost attribution, records metrics, and fans the results
// back to the per-request futures (releasing their admission tokens).
func (s *Service) execute(b *batch, epoch int64) {
	// Honor per-request contexts through to execution: callers that gave up
	// while the batch sat in the queue are answered (ctx error) and their
	// admission slots released without charging the machine for them.
	live := b.reqs[:0]
	for _, req := range b.reqs {
		if req.ctx != nil && req.ctx.Err() != nil {
			s.metrics.canceled()
			req.done <- reply{err: req.ctx.Err()}
			<-s.tokens
			continue
		}
		live = append(live, req)
	}
	b.reqs = live
	if len(b.reqs) == 0 {
		return
	}

	write := !b.key.kind.IsRead()
	// Durable-write mode: the batch becomes durable *before* it commits to
	// the machine. If the append fails, the batch is refused in its
	// entirety — no machine work, no partial state — and its callers see
	// ErrPersist. Expire, restore-cell, migrate-cell, and set-semantics
	// (unique) batches are the exception: their applied sets are only known
	// at execution time, so runBatch logs them itself (still before the
	// commit).
	if write && s.cfg.Persist != nil &&
		b.key.kind != KindExpire && b.key.kind != KindRestoreCell && b.key.kind != KindMigrateCell && !b.key.unique {
		if perr := s.logDurable(b); perr != nil {
			for _, req := range b.reqs {
				req.done <- reply{err: fmt.Errorf("%w: %v", ErrPersist, perr)}
				<-s.tokens
			}
			return
		}
	}

	mach := s.tree.Machine()
	s.batchSeq++
	// Scope every round this batch triggers under a batch-identifying
	// label, so the tracer (or any observer) attributes per-round cost —
	// stragglers included — to the exact batch that caused it. Cell
	// restores are labeled like the supervisor's module rebuilds
	// (fault/recover/module=N) so peer-rebuild cost is attributed to the
	// fault-tolerance budget, not the serving path.
	label := fmt.Sprintf("serve/%s/batch=%d", b.key.kind, s.batchSeq)
	if b.key.kind == KindRestoreCell {
		label = fmt.Sprintf("fault/rebuild/cell=%d", b.key.k)
	}
	if b.key.kind == KindMigrateCell {
		// Migration adopts are metered under their own namespace so the
		// rebalancer's cost is separable from both serving and rebuilds.
		label = fmt.Sprintf("shard/migrate/cell=%d", b.key.k)
	}
	pop := mach.PushLabel(label)
	pre := mach.SnapshotStats()
	results, err := s.runBatchSafe(b)
	// Transient machine faults on read-only batches are retried with
	// doubling backoff: reads have no side effects, so re-execution is
	// always safe. Writes are never retried — an aborted update may have
	// partially mutated the tree, and replaying it could double-apply.
	if err != nil && errors.Is(err, ErrFault) && b.key.kind.IsRead() {
		backoff := s.cfg.RetryBackoff
		for attempt := 0; attempt < s.cfg.RetryTransient && err != nil && errors.Is(err, ErrFault); attempt++ {
			time.Sleep(backoff)
			backoff *= 2
			s.metrics.batchRetried()
			results, err = s.runBatchSafe(b)
		}
	}
	delta := mach.SnapshotStats().Sub(pre)
	pop()

	rec := BatchRecord{
		Epoch:       epoch,
		Kind:        b.key.kind.String(),
		K:           b.key.k,
		Size:        len(b.reqs),
		Linger:      b.sealed.Sub(b.firstEnq),
		SealedBy:    b.sealedBy,
		Cost:        delta.Stats,
		CommBalance: pim.MaxLoadRatio(delta.ModuleComm),
	}
	s.metrics.record(rec)
	if s.cfg.OnBatch != nil {
		s.cfg.OnBatch(rec)
	}

	info := BatchInfo{
		Epoch:  epoch,
		Kind:   rec.Kind,
		Size:   rec.Size,
		Linger: rec.Linger,
		Cost:   rec.Cost,
	}
	now := time.Now()
	for i, req := range b.reqs {
		rep := reply{info: info, err: err}
		if err == nil && results != nil {
			rep = results[i]
			rep.info = info
		}
		// Service-side latency: admission to reply delivery, the quantity
		// /statsz quantiles report per kind.
		s.metrics.observeLatency(rec.Kind, now.Sub(req.enq))
		req.done <- rep // buffered, never blocks
		<-s.tokens      // release the admission token
	}

	if write && err == nil {
		// Refresh the lock-free size mirror while the executor still owns
		// the tree; TreeSize readers (wire pings) never touch the tree.
		s.size.Store(int64(s.tree.Size()))
		if s.cfg.Persist != nil {
			s.maybeCheckpoint()
		}
	}
}

// runBatchSafe runs a batch with panic containment. A typed machine fault
// (an escalated *pim.ModuleFault or *pim.RoundTimeout) becomes an ErrFault
// error — transient, and retryable for reads. Any other panic becomes an
// ErrBatchPanic error carrying the stack. Either way only this batch's
// requests fail; the executor, the machine, and the service survive.
func (s *Service) runBatchSafe(b *batch) (results []reply, err error) {
	defer func() {
		switch p := recover().(type) {
		case nil:
		case *pim.ModuleFault:
			s.metrics.batchFaulted()
			results, err = nil, fmt.Errorf("%w: %v", ErrFault, p)
		case *pim.RoundTimeout:
			s.metrics.batchFaulted()
			results, err = nil, fmt.Errorf("%w: %v", ErrFault, p)
		default:
			s.metrics.batchPanicked()
			results, err = nil, fmt.Errorf("%w: %v\n%s", ErrBatchPanic, p, debug.Stack())
		}
	}()
	if s.testHookPreBatch != nil {
		s.testHookPreBatch(b)
	}
	return s.runBatch(b)
}

// runBatch dispatches a homogeneous batch to the matching core entry point
// and splits the batch result into per-request replies (without info, which
// execute attaches afterwards).
func (s *Service) runBatch(b *batch) ([]reply, error) {
	n := len(b.reqs)
	switch b.key.kind {
	case KindLookup:
		qs := make([]geom.Point, n)
		for i, req := range b.reqs {
			qs[i] = req.pt
		}
		leaves := s.tree.LeafSearch(qs)
		out := make([]reply, n)
		for i, leaf := range leaves {
			// Copy: the leaf's bucket may be mutated by a later update
			// batch while the caller still holds the reply.
			items := s.tree.LeafItems(leaf)
			out[i].items = append([]core.Item(nil), items...)
		}
		return out, nil

	case KindKNN:
		qs := make([]geom.Point, n)
		for i, req := range b.reqs {
			qs[i] = req.pt
		}
		res := s.tree.KNN(qs, b.key.k)
		out := make([]reply, n)
		for i, cands := range res {
			ns := make([]Neighbor, len(cands))
			for j, c := range cands {
				ns[j] = Neighbor{ID: c.ID, Dist: math.Sqrt(c.Dist2)}
			}
			out[i].neighbors = ns
			// Keep the raw candidates too: the shard wire path ships dist2
			// so the router's global merge never compares rounded sqrts.
			out[i].cands = cands
		}
		return out, nil

	case KindRange:
		boxes := make([]geom.Box, n)
		for i, req := range b.reqs {
			boxes[i] = req.box
		}
		res := s.tree.RangeReport(boxes)
		out := make([]reply, n)
		for i, items := range res {
			out[i].items = items
		}
		return out, nil

	case KindInsert:
		items := make([]core.Item, n)
		for i, req := range b.reqs {
			items[i] = req.item
		}
		if b.key.unique {
			applied, err := s.applyUnique(items)
			if err != nil {
				return nil, err
			}
			s.tree.BatchInsert(applied)
			return make([]reply, n), nil
		}
		s.tree.BatchInsert(items)
		return make([]reply, n), nil

	case KindDelete:
		items := make([]core.Item, n)
		for i, req := range b.reqs {
			items[i] = req.item
		}
		s.tree.BatchDelete(items)
		return make([]reply, n), nil

	case KindJoin:
		probes := make([]core.Item, n)
		for i, req := range b.reqs {
			probes[i] = core.Item{P: req.pt}
		}
		res := s.tree.ProbeJoin(probes, math.Float64frombits(b.key.radiusBits))
		out := make([]reply, n)
		for i, items := range res {
			out[i].items = items
		}
		return out, nil

	case KindAggregate:
		boxes := make([]geom.Box, n)
		for i, req := range b.reqs {
			boxes[i] = req.box
		}
		res := s.tree.RangeAggregate(boxes)
		out := make([]reply, n)
		for i := range res {
			out[i].agg = &res[i]
		}
		return out, nil

	case KindIngest:
		items := make([]core.Item, n)
		for i, req := range b.reqs {
			items[i] = req.item
		}
		if b.key.unique {
			applied, err := s.applyUnique(items)
			if err != nil {
				return nil, err
			}
			s.tree.BatchInsert(applied)
			// Track a deadline only if no identical (item, deadline) entry
			// exists — a restored snapshot may already carry it. Within-batch
			// duplicates collapse the same way because push is incremental.
			for _, req := range b.reqs {
				if !s.expiry.tracks(req.item, req.expireAt) {
					s.expiry.push(expiryEntry{at: req.expireAt, item: req.item})
				}
			}
			return make([]reply, n), nil
		}
		s.tree.BatchInsert(items)
		// Track deadlines only after the insert committed: a panicked
		// batch must not leave phantom expiry entries.
		for _, req := range b.reqs {
			s.expiry.push(expiryEntry{at: req.expireAt, item: req.item})
		}
		return make([]reply, n), nil

	case KindExpire:
		// The sweep horizon is the batch's max now; each request is
		// answered with the count of popped entries at or below its own
		// now (pop order is ascending, so that is a prefix count).
		maxNow := b.reqs[0].now
		for _, req := range b.reqs[1:] {
			if req.now > maxNow {
				maxNow = req.now
			}
		}
		due := s.expiry.popDue(maxNow)
		if len(due) > 0 {
			items := make([]core.Item, len(due))
			for i, e := range due {
				items[i] = e.item
			}
			// Log-before-commit for the sweep's delete set. On failure the
			// entries return to the tracker and the tree is untouched: the
			// sweep simply has not happened.
			if s.cfg.Persist != nil {
				if _, perr := s.cfg.Persist.LogBatch(persist.OpDelete, items); perr != nil {
					s.expiry.pushAll(due)
					s.metrics.persistFailed()
					return nil, fmt.Errorf("%w: %v", ErrPersist, perr)
				}
			}
			s.tree.BatchDelete(items)
		}
		out := make([]reply, n)
		for i, req := range b.reqs {
			c := 0
			for _, e := range due {
				if e.at <= req.now {
					c++
				}
			}
			out[i].expired = c
		}
		return out, nil

	case KindSnapshotCell:
		out := make([]reply, n)
		for i, req := range b.reqs {
			items, deadlines, orphans, orphanAts := s.cellState(req.box)
			out[i] = reply{items: items, deadlines: deadlines, orphans: orphans, orphanAts: orphanAts}
		}
		return out, nil

	case KindChecksumCell:
		out := make([]reply, n)
		for i, req := range b.reqs {
			out[i].csum = cellChecksum(s.cellState(req.box))
		}
		return out, nil

	case KindRestoreCell:
		out := make([]reply, n)
		for i, req := range b.reqs {
			changed, err := s.restoreCell(req)
			if err != nil {
				return nil, err
			}
			out[i].changed = changed
		}
		return out, nil

	case KindMigrateCell:
		out := make([]reply, n)
		for i, req := range b.reqs {
			changed, err := s.migrateCell(req)
			if err != nil {
				return nil, err
			}
			out[i].changed = changed
		}
		return out, nil
	}
	return nil, fmt.Errorf("serve: unknown batch kind %v", b.key.kind)
}

// applyUnique filters a set-semantics write batch down to the items that
// are genuinely new — not already stored (exact ID + coordinates match)
// and not duplicated within the batch — and WAL-logs exactly that subset
// (set-semantics batches skip admission-time logging: replaying an insert
// that execution skipped would double-apply it after recovery).
func (s *Service) applyUnique(items []core.Item) ([]core.Item, error) {
	present := s.tree.Contains(items)
	applied := make([]core.Item, 0, len(items))
	for i, it := range items {
		if present[i] {
			continue
		}
		dup := false
		for _, a := range applied {
			if core.ItemEq(a, it) {
				dup = true
				break
			}
		}
		if !dup {
			applied = append(applied, it)
		}
	}
	if s.cfg.Persist != nil && len(applied) > 0 {
		if _, perr := s.cfg.Persist.LogBatch(persist.OpInsert, applied); perr != nil {
			s.metrics.persistFailed()
			return nil, fmt.Errorf("%w: %v", ErrPersist, perr)
		}
	}
	return applied, nil
}

// cellState reads one cell's full replicated state: the canonically sorted
// live items, their attributed expiry deadlines (math.MinInt64 = no TTL
// entry), and the cell's orphaned expiry entries. Entries attribute to live
// copies in canonical order; the leftovers are orphans. Both sides are
// sorted, so one merge walk assigns deterministically.
func (s *Service) cellState(cell geom.Box) (items []core.Item, deadlines []int64, orphans []core.Item, orphanAts []int64) {
	items = s.cellItems(cell)
	entries := s.expiry.entriesIn(func(it core.Item) bool { return cell.ContainsHalfOpen(it.P) })
	deadlines = make([]int64, len(items))
	j := 0
	for k := range items {
		for j < len(entries) && core.ItemLess(entries[j].item, items[k]) {
			orphans = append(orphans, entries[j].item)
			orphanAts = append(orphanAts, entries[j].at)
			j++
		}
		if j < len(entries) && core.ItemEq(entries[j].item, items[k]) {
			deadlines[k] = entries[j].at
			j++
		} else {
			deadlines[k] = math.MinInt64
		}
	}
	for ; j < len(entries); j++ {
		orphans = append(orphans, entries[j].item)
		orphanAts = append(orphanAts, entries[j].at)
	}
	return items, deadlines, orphans, orphanAts
}

// cellItems returns a fresh, canonically sorted copy of the live items the
// half-open cell box owns.
func (s *Service) cellItems(cell geom.Box) []core.Item {
	res := s.tree.RangeReport([]geom.Box{cell})[0]
	items := make([]core.Item, 0, len(res))
	for _, it := range res {
		if cell.ContainsHalfOpen(it.P) {
			items = append(items, it)
		}
	}
	core.SortItems(items)
	return items
}

// restoreCell replaces one cell's local state with a peer snapshot: the
// tree multiset diff is WAL-logged (deletes then inserts) and applied, and
// the cell's expiry entries are rebuilt from the snapshot. It reports
// whether anything differed. A crash between the two WAL appends can
// recover to an empty cell; that is safe because RestoreCell only runs on
// a fenced (not in-sync) replica whose authoritative copy lives on its
// peers — the next rebuild pass on boot re-pulls the cell.
func (s *Service) restoreCell(req *request) (changed bool, err error) {
	cur := s.cellItems(req.box)

	// Canonicalize the desired state, keeping deadlines attached through
	// the sort (ties order by deadline so the result is a pure function of
	// the snapshot multiset).
	type pair struct {
		item core.Item
		at   int64
	}
	desired := make([]pair, len(req.items))
	for i := range req.items {
		desired[i] = pair{req.items[i], req.deadlines[i]}
	}
	sort.Slice(desired, func(i, j int) bool {
		if !core.ItemEq(desired[i].item, desired[j].item) {
			return core.ItemLess(desired[i].item, desired[j].item)
		}
		return desired[i].at < desired[j].at
	})
	want := make([]core.Item, len(desired))
	for i := range desired {
		want[i] = desired[i].item
	}

	// Tree multiset diff (both sides sorted): what to delete, what to
	// insert. Matching copies stay untouched, so a convergence re-pull of
	// an already-synced cell does zero machine work and zero WAL traffic.
	var dels, inss []core.Item
	ci, di := 0, 0
	for ci < len(cur) && di < len(want) {
		switch {
		case core.ItemEq(cur[ci], want[di]):
			ci++
			di++
		case core.ItemLess(cur[ci], want[di]):
			dels = append(dels, cur[ci])
			ci++
		default:
			inss = append(inss, want[di])
			di++
		}
	}
	dels = append(dels, cur[ci:]...)
	inss = append(inss, want[di:]...)

	// Desired expiry entries: tracked live items plus the snapshot's
	// orphans, in canonical (item, deadline) order.
	var wantEntries []expiryEntry
	for _, p := range desired {
		if p.at != math.MinInt64 {
			wantEntries = append(wantEntries, expiryEntry{at: p.at, item: p.item})
		}
	}
	for i := range req.orphans {
		wantEntries = append(wantEntries, expiryEntry{at: req.orphanAts[i], item: req.orphans[i]})
	}
	sort.Slice(wantEntries, func(i, j int) bool {
		if !core.ItemEq(wantEntries[i].item, wantEntries[j].item) {
			return core.ItemLess(wantEntries[i].item, wantEntries[j].item)
		}
		return wantEntries[i].at < wantEntries[j].at
	})
	curEntries := s.expiry.entriesIn(func(it core.Item) bool { return req.box.ContainsHalfOpen(it.P) })
	entriesEqual := len(curEntries) == len(wantEntries)
	for i := 0; entriesEqual && i < len(curEntries); i++ {
		entriesEqual = curEntries[i].at == wantEntries[i].at && core.ItemEq(curEntries[i].item, wantEntries[i].item)
	}

	if len(dels) == 0 && len(inss) == 0 && entriesEqual {
		return false, nil
	}

	// Log-before-commit for the diff. On failure nothing was applied; the
	// cell is exactly its pre-restore self.
	if s.cfg.Persist != nil {
		if len(dels) > 0 {
			if _, perr := s.cfg.Persist.LogBatch(persist.OpDelete, dels); perr != nil {
				s.metrics.persistFailed()
				return false, fmt.Errorf("%w: %v", ErrPersist, perr)
			}
		}
		if len(inss) > 0 {
			if _, perr := s.cfg.Persist.LogBatch(persist.OpInsert, inss); perr != nil {
				s.metrics.persistFailed()
				return false, fmt.Errorf("%w: %v", ErrPersist, perr)
			}
		}
	}
	if len(dels) > 0 {
		s.tree.BatchDelete(dels)
	}
	if len(inss) > 0 {
		s.tree.BatchInsert(inss)
	}
	if !entriesEqual {
		s.expiry.dropUnless(func(it core.Item) bool { return !req.box.ContainsHalfOpen(it.P) })
		s.expiry.pushAll(wantEntries)
	}
	return true, nil
}

// migrateCell adopts a migrating cell region: the write ledger (the
// inserts/deletes that raced the migration cut, in router ack order) is
// replayed on top of the staged snapshot to reconstruct the source's
// post-cut state, and the result is exact-set into the region with
// restoreCell's one-batch multiset-diff apply. Each replayed op mirrors
// the cluster write path's semantics on the (items, entries) state pair —
// InsertUnique, IngestUnique, ignore-absent Delete with the TTL entry left
// behind as an orphan — so the adopted region's replication checksum is
// bit-identical to the source's.
func (s *Service) migrateCell(req *request) (changed bool, err error) {
	type migPair struct {
		item core.Item
		at   int64
		dead bool
	}
	staged := make([]migPair, len(req.items))
	byID := map[int32][]int{}
	for i := range req.items {
		staged[i] = migPair{item: req.items[i], at: req.deadlines[i]}
		byID[req.items[i].ID] = append(byID[req.items[i].ID], i)
	}
	findLive := func(it core.Item) int {
		for _, i := range byID[it.ID] {
			if !staged[i].dead && core.ItemEq(staged[i].item, it) {
				return i
			}
		}
		return -1
	}
	addStaged := func(it core.Item, at int64) {
		byID[it.ID] = append(byID[it.ID], len(staged))
		staged = append(staged, migPair{item: it, at: at})
	}
	orphans := append([]core.Item(nil), req.orphans...)
	orphanAts := append([]int64(nil), req.orphanAts...)
	hasOrphan := func(it core.Item, at int64) bool {
		for i := range orphans {
			if orphanAts[i] == at && core.ItemEq(orphans[i], it) {
				return true
			}
		}
		return false
	}

	for _, op := range req.ops {
		if !req.box.ContainsHalfOpen(op.Item.P) {
			continue // ledger op outside the moving region: not ours
		}
		idx := findLive(op.Item)
		switch {
		case op.Delete:
			if idx < 0 {
				continue // ignore-absent delete
			}
			// The live item goes; a tracked TTL entry stays behind as an
			// orphan, exactly as a plain delete leaves the expiry heap.
			if staged[idx].at != math.MinInt64 {
				orphans = append(orphans, staged[idx].item)
				orphanAts = append(orphanAts, staged[idx].at)
			}
			staged[idx].dead = true
		case op.ExpireAt == math.MinInt64:
			// InsertUnique: no-op when the identical item is already live.
			if idx < 0 {
				addStaged(op.Item, math.MinInt64)
			}
		default:
			// IngestUnique: the insert is skipped when the item is live; the
			// deadline entry is created only when no identical (item,
			// deadline) entry exists — tracked on the live item or orphaned.
			if idx < 0 {
				if hasOrphan(op.Item, op.ExpireAt) {
					addStaged(op.Item, math.MinInt64)
				} else {
					addStaged(op.Item, op.ExpireAt)
				}
				continue
			}
			if staged[idx].at == op.ExpireAt || hasOrphan(op.Item, op.ExpireAt) {
				continue
			}
			orphans = append(orphans, op.Item)
			orphanAts = append(orphanAts, op.ExpireAt)
		}
	}

	items := make([]core.Item, 0, len(staged))
	deadlines := make([]int64, 0, len(staged))
	for i := range staged {
		if !staged[i].dead {
			items = append(items, staged[i].item)
			deadlines = append(deadlines, staged[i].at)
		}
	}
	return s.restoreCell(&request{
		box: req.box, items: items, deadlines: deadlines,
		orphans: orphans, orphanAts: orphanAts,
	})
}
