package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/trace"
)

// wireItem is the JSON shape of a stored item.
type wireItem struct {
	ID       int32     `json:"id"`
	P        []float64 `json:"p"`
	Priority float64   `json:"priority,omitempty"`
}

func toWire(items []core.Item) []wireItem {
	out := make([]wireItem, len(items))
	for i, it := range items {
		out[i] = wireItem{ID: it.ID, P: it.P, Priority: it.Priority}
	}
	return out
}

// NewHandler exposes a Service over HTTP. Read endpoints are GETs with a
// comma-separated point parameter; update endpoints are POSTs. Every data
// response carries the BatchInfo of the coalesced batch the request rode
// in, so clients observe batching directly.
//
//	GET  /lookup?p=0.1,0.2
//	GET  /knn?p=0.1,0.2&k=8
//	GET  /range?lo=0.1,0.1&hi=0.3,0.4
//	GET  /join?p=0.1,0.2&r=0.05
//	GET  /aggregate?lo=0.1,0.1&hi=0.3,0.4
//	POST /insert?id=7&p=0.5,0.5[&priority=2.5]
//	POST /delete?id=7&p=0.5,0.5
//	POST /ingest?id=7&p=0.5,0.5&expire_at=1000[&priority=2.5]
//	POST /expire?now=1000
//	GET  /statsz
//	GET  /tracez[?k=10][&format=perfetto]
//	GET  /persistz
//	GET  /healthz
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Metrics())
	})

	mux.HandleFunc("/persistz", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.PersistStatus()
		if !ok {
			http.Error(w, "persistence disabled: start the service with Config.Persist", http.StatusNotFound)
			return
		}
		var snapAge float64
		if st.SnapshotUnixNano > 0 {
			snapAge = time.Since(time.Unix(0, st.SnapshotUnixNano)).Seconds()
		}
		rec := st.LastRecovery
		writeJSON(w, struct {
			Dir                string  `json:"dir"`
			LSN                uint64  `json:"lsn"`
			Fsync              bool    `json:"fsync"`
			SnapshotLSN        uint64  `json:"snapshot_lsn"`
			SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
			SnapshotBytes      int64   `json:"snapshot_bytes"`
			WALSegments        int     `json:"wal_segments"`
			WALBytes           int64   `json:"wal_bytes"`
			Appends            uint64  `json:"appends"`
			Syncs              uint64  `json:"syncs"`
			CheckpointsStarted uint64  `json:"checkpoints_started"`
			CheckpointsWritten uint64  `json:"checkpoints_written"`
			LastCheckpointErr  string  `json:"last_checkpoint_err,omitempty"`
			// Last-recovery summary: what Open found at startup and what the
			// replay cost in metered terms.
			Recovered         bool    `json:"recovered"`
			RecoverySnapshot  string  `json:"recovery_snapshot,omitempty"`
			ReplayRecords     int     `json:"replay_records"`
			ReplayItems       int     `json:"replay_items"`
			TornBytesDropped  int64   `json:"torn_bytes_dropped"`
			ReplayCommWords   int64   `json:"replay_comm_words"`
			ReplayWallSeconds float64 `json:"replay_wall_seconds"`
		}{
			Dir: st.Dir, LSN: st.LSN, Fsync: st.Fsync,
			SnapshotLSN: st.SnapshotLSN, SnapshotAgeSeconds: snapAge, SnapshotBytes: st.SnapshotBytes,
			WALSegments: st.WALSegments, WALBytes: st.WALBytes,
			Appends: st.Appends, Syncs: st.Syncs,
			CheckpointsStarted: st.CheckpointsStarted, CheckpointsWritten: st.CheckpointsWritten,
			LastCheckpointErr: st.LastCheckpointErr,
			Recovered:         rec.Recovered,
			RecoverySnapshot:  rec.SnapshotPath,
			ReplayRecords:     rec.ReplayRecords,
			ReplayItems:       rec.ReplayItems,
			TornBytesDropped:  rec.TornBytes,
			ReplayCommWords:   rec.ReplayCost.Communication,
			ReplayWallSeconds: rec.ReplayWall.Seconds(),
		})
	})

	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		t := s.Tracer()
		if t == nil {
			http.Error(w, "tracing disabled: start the service with Config.TraceCapacity > 0", http.StatusNotFound)
			return
		}
		recs := t.Records()
		if r.FormValue("format") == "perfetto" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="pimkd-trace.json"`)
			if err := trace.WritePerfetto(w, recs); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		topK := 5
		if ks := r.FormValue("k"); ks != "" {
			if v, err := strconv.Atoi(ks); err == nil && v > 0 {
				topK = v
			}
		}
		writeJSON(w, struct {
			Seen    int64         `json:"seen"`
			Dropped int64         `json:"dropped"`
			Totals  trace.Totals  `json:"totals"`
			Report  *trace.Report `json:"report"`
		}{t.Seen(), t.Dropped(), t.Totals(), trace.Analyze(recs, topK)})
	})

	mux.HandleFunc("/lookup", func(w http.ResponseWriter, r *http.Request) {
		p, ok := pointParam(w, r, "p")
		if !ok {
			return
		}
		items, info, err := s.Lookup(r.Context(), p)
		if !s.okReply(w, err) {
			return
		}
		writeJSON(w, struct {
			Items []wireItem `json:"items"`
			Batch BatchInfo  `json:"batch"`
		}{toWire(items), info})
	})

	mux.HandleFunc("/knn", func(w http.ResponseWriter, r *http.Request) {
		p, ok := pointParam(w, r, "p")
		if !ok {
			return
		}
		k := 1
		if ks := r.FormValue("k"); ks != "" {
			var err error
			if k, err = strconv.Atoi(ks); err != nil {
				http.Error(w, "bad k: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		neighbors, info, err := s.KNN(r.Context(), p, k)
		if !s.okReply(w, err) {
			return
		}
		writeJSON(w, struct {
			Neighbors []Neighbor `json:"neighbors"`
			Batch     BatchInfo  `json:"batch"`
		}{neighbors, info})
	})

	mux.HandleFunc("/range", func(w http.ResponseWriter, r *http.Request) {
		lo, ok := pointParam(w, r, "lo")
		if !ok {
			return
		}
		hi, ok := pointParam(w, r, "hi")
		if !ok {
			return
		}
		if len(lo) != len(hi) {
			http.Error(w, "lo/hi dimension mismatch", http.StatusBadRequest)
			return
		}
		for d := range lo {
			if lo[d] > hi[d] {
				http.Error(w, fmt.Sprintf("inverted box on axis %d", d), http.StatusBadRequest)
				return
			}
		}
		items, info, err := s.Range(r.Context(), geom.NewBox(lo, hi))
		if !s.okReply(w, err) {
			return
		}
		writeJSON(w, struct {
			Items []wireItem `json:"items"`
			Batch BatchInfo  `json:"batch"`
		}{toWire(items), info})
	})

	mux.HandleFunc("/join", func(w http.ResponseWriter, r *http.Request) {
		p, ok := pointParam(w, r, "p")
		if !ok {
			return
		}
		radius, err := strconv.ParseFloat(r.FormValue("r"), 64)
		if err != nil {
			http.Error(w, "bad r: "+err.Error(), http.StatusBadRequest)
			return
		}
		items, info, err := s.Join(r.Context(), p, radius)
		if !s.okReply(w, err) {
			return
		}
		writeJSON(w, struct {
			Matches []wireItem `json:"matches"`
			Batch   BatchInfo  `json:"batch"`
		}{toWire(items), info})
	})

	mux.HandleFunc("/aggregate", func(w http.ResponseWriter, r *http.Request) {
		lo, ok := pointParam(w, r, "lo")
		if !ok {
			return
		}
		hi, ok := pointParam(w, r, "hi")
		if !ok {
			return
		}
		if len(lo) != len(hi) {
			http.Error(w, "lo/hi dimension mismatch", http.StatusBadRequest)
			return
		}
		for d := range lo {
			if lo[d] > hi[d] {
				http.Error(w, fmt.Sprintf("inverted box on axis %d", d), http.StatusBadRequest)
				return
			}
		}
		agg, info, err := s.Aggregate(r.Context(), geom.NewBox(lo, hi))
		if !s.okReply(w, err) {
			return
		}
		writeJSON(w, struct {
			Count    int64     `json:"count"`
			Centroid []float64 `json:"centroid,omitempty"`
			Batch    BatchInfo `json:"batch"`
		}{agg.Count, agg.Centroid(), info})
	})

	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "ingest requires POST", http.StatusMethodNotAllowed)
			return
		}
		p, ok := pointParam(w, r, "p")
		if !ok {
			return
		}
		id, err := strconv.ParseInt(r.FormValue("id"), 10, 32)
		if err != nil {
			http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
			return
		}
		expireAt, err := strconv.ParseInt(r.FormValue("expire_at"), 10, 64)
		if err != nil {
			http.Error(w, "bad expire_at: "+err.Error(), http.StatusBadRequest)
			return
		}
		it := core.Item{P: p, ID: int32(id)}
		if ps := r.FormValue("priority"); ps != "" {
			if it.Priority, err = strconv.ParseFloat(ps, 64); err != nil {
				http.Error(w, "bad priority: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		info, err := s.Ingest(r.Context(), it, expireAt)
		if !s.okReply(w, err) {
			return
		}
		writeJSON(w, struct {
			Batch BatchInfo `json:"batch"`
		}{info})
	})

	mux.HandleFunc("/expire", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "expire requires POST", http.StatusMethodNotAllowed)
			return
		}
		now, err := strconv.ParseInt(r.FormValue("now"), 10, 64)
		if err != nil {
			http.Error(w, "bad now: "+err.Error(), http.StatusBadRequest)
			return
		}
		n, info, err := s.Expire(r.Context(), now)
		if !s.okReply(w, err) {
			return
		}
		writeJSON(w, struct {
			Expired int       `json:"expired"`
			Batch   BatchInfo `json:"batch"`
		}{n, info})
	})

	update := func(name string, op func(r *http.Request, it core.Item) (BatchInfo, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, name+" requires POST", http.StatusMethodNotAllowed)
				return
			}
			p, ok := pointParam(w, r, "p")
			if !ok {
				return
			}
			id, err := strconv.ParseInt(r.FormValue("id"), 10, 32)
			if err != nil {
				http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
				return
			}
			it := core.Item{P: p, ID: int32(id)}
			if ps := r.FormValue("priority"); ps != "" {
				if it.Priority, err = strconv.ParseFloat(ps, 64); err != nil {
					http.Error(w, "bad priority: "+err.Error(), http.StatusBadRequest)
					return
				}
			}
			info, err := op(r, it)
			if !s.okReply(w, err) {
				return
			}
			writeJSON(w, struct {
				Batch BatchInfo `json:"batch"`
			}{info})
		}
	}
	mux.HandleFunc("/insert", update("insert", func(r *http.Request, it core.Item) (BatchInfo, error) {
		return s.Insert(r.Context(), it)
	}))
	mux.HandleFunc("/delete", update("delete", func(r *http.Request, it core.Item) (BatchInfo, error) {
		return s.Delete(r.Context(), it)
	}))

	return mux
}

// pointParam parses a comma-separated float point from query/form parameter
// name, writing a 400 on failure.
func pointParam(w http.ResponseWriter, r *http.Request, name string) (geom.Point, bool) {
	raw := r.FormValue(name)
	if raw == "" {
		http.Error(w, "missing parameter "+name, http.StatusBadRequest)
		return nil, false
	}
	parts := strings.Split(raw, ",")
	p := make(geom.Point, len(parts))
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad %s[%d]: %v", name, i, err), http.StatusBadRequest)
			return nil, false
		}
		p[i] = v
	}
	return p, true
}

// okReply maps service errors to HTTP statuses; returns false when a status
// was already written. Robustness mapping: shed and drained requests get
// 503 (with Retry-After on sheds — the client should come back), transient
// faults that out-lived the retry policy get 503 (retryable), a batch-worker
// panic gets 500 (a bug, not load), and a request whose own deadline or
// connection expired gets 504.
func (s *Service) okReply(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrOverloaded):
		secs := int(s.cfg.ShedRetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrFault):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrBatchPanic), errors.Is(err, ErrPersist):
		http.Error(w, err.Error(), http.StatusInternalServerError)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
	return false
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
