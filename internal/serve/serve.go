package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/heapx"
	"pimkd/internal/hist"
	"pimkd/internal/persist"
	"pimkd/internal/shard"
	"pimkd/internal/trace"
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serve: service closed")

// ErrOverloaded is returned when load shedding is enabled
// (Config.ShedHighWater > 0) and the service is above its high-water mark.
// The HTTP layer maps it to 503 with a Retry-After hint.
var ErrOverloaded = errors.New("serve: overloaded, retry later")

// ErrFault wraps a contained machine fault (an escalated module crash or a
// round timeout) that survived the batch retry policy. Read-only batches
// are retried Config.RetryTransient times before callers see this.
var ErrFault = errors.New("serve: machine fault")

// ErrBatchPanic wraps a non-fault panic recovered in the batch worker. The
// panic fails only the requests of the affected batch; the service and its
// executor keep running.
var ErrBatchPanic = errors.New("serve: batch execution panicked")

// ErrPersist wraps a write-ahead-log append failure in durable-write mode.
// The affected write batch is NOT applied to the tree (log-before-commit:
// what cannot be made durable is not acknowledged), and the log stays
// poisoned until the operator intervenes — subsequent writes fail fast while
// reads keep serving.
var ErrPersist = errors.New("serve: durable log append failed")

// Service admits concurrent singleton requests, coalesces them into
// homogeneous batches, executes the batches against a PIM-kd-tree on its
// shared pim.Machine, and fans results back to the callers. All exported
// methods are safe for concurrent use; the tree itself is only ever touched
// by the internal executor goroutine.
type Service struct {
	cfg  Config
	tree *core.Tree

	// tokens is the admission semaphore: a request holds one token from
	// admission until its reply is delivered (backpressure).
	tokens chan struct{}
	// closing is closed by Close to release submitters blocked on tokens.
	closing chan struct{}
	// batchCh carries sealed batches to the executor in admission order.
	// Capacity MaxPending: every batch holds ≥1 admitted request, so sends
	// never block.
	batchCh chan *batch
	// done is closed when the executor has drained batchCh and exited.
	done chan struct{}

	mu      sync.Mutex
	pending map[batchKey]*pendingQueue
	closed  bool

	// size mirrors the tree's live item count so concurrent readers (the
	// shard wire listener's pings) never touch the executor-owned tree.
	size atomic.Int64

	metrics *metrics
	// tracer is the per-round observer attached to the tree's machine when
	// Config.TraceCapacity > 0; nil when tracing is disabled.
	tracer *trace.Tracer
	// batchSeq numbers executed batches for round-label attribution; only
	// the executor goroutine touches it.
	batchSeq int64

	// expiry tracks streaming-ingest entries awaiting their TTL sweep;
	// executor-only (see expiry.go).
	expiry expiryHeap

	// testHookPreBatch, when non-nil, runs on the executor goroutine just
	// before a batch executes, inside the panic-containment scope. Tests use
	// it to inject batch-worker panics; production code never sets it.
	testHookPreBatch func(*batch)

	// Durable-write mode state (Config.Persist != nil; see persist.go).
	// persistCh hands started checkpoints to the checkpointer goroutine;
	// persistDone is closed when it exits. writesSinceCkpt and lastCkpt are
	// executor-only.
	persistCh       chan *persist.Checkpoint
	persistDone     chan struct{}
	writesSinceCkpt int
	lastCkpt        time.Time
}

// pendingQueue is a forming batch for one key.
type pendingQueue struct {
	reqs     []*request
	firstEnq time.Time
	timer    *time.Timer
	gen      uint64 // invalidates stale linger timers
}

// New wraps tree in a Service and starts its executor. The tree (and its
// machine) must not be used by anyone else until Close returns.
func New(cfg Config, tree *core.Tree) *Service {
	cfg = cfg.withDefaults()
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	s := &Service{
		cfg:     cfg,
		tree:    tree,
		tokens:  make(chan struct{}, cfg.MaxPending),
		closing: make(chan struct{}),
		batchCh: make(chan *batch, cfg.MaxPending),
		done:    make(chan struct{}),
		pending: map[batchKey]*pendingQueue{},
		metrics: newMetrics(rng),
	}
	s.size.Store(int64(tree.Size()))
	if cfg.TraceCapacity > 0 {
		s.tracer = trace.New(cfg.TraceCapacity)
		tree.Machine().SetObserver(s.tracer)
	}
	if cfg.Persist != nil {
		s.persistCh = make(chan *persist.Checkpoint, 1)
		s.persistDone = make(chan struct{})
		s.lastCkpt = time.Now()
		go s.runCheckpointer()
	}
	go s.runExecutor()
	return s
}

// Tracer returns the per-round tracer, or nil when Config.TraceCapacity
// was 0. Safe to call concurrently; the Tracer's own methods are
// synchronized against the executor.
func (s *Service) Tracer() *trace.Tracer { return s.tracer }

// Lookup routes p to its leaf and returns a copy of the leaf's items. The
// BatchInfo describes the coalesced batch the request rode in.
func (s *Service) Lookup(ctx context.Context, p geom.Point) ([]core.Item, BatchInfo, error) {
	if err := s.checkPoint(p); err != nil {
		return nil, BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindLookup, pt: p})
	return rep.items, rep.info, err
}

// KNN returns up to k nearest neighbors of p by ascending distance.
func (s *Service) KNN(ctx context.Context, p geom.Point, k int) ([]Neighbor, BatchInfo, error) {
	if err := s.checkPoint(p); err != nil {
		return nil, BatchInfo{}, err
	}
	if k < 1 {
		return nil, BatchInfo{}, fmt.Errorf("serve: k must be >= 1, got %d", k)
	}
	rep, err := s.submit(ctx, &request{kind: KindKNN, pt: p, k: k})
	return rep.neighbors, rep.info, err
}

// KNNCandidates is KNN in raw wire form: up to k nearest neighbors as
// (dist2, id) candidates in the canonical order. The shard listener uses it
// so a router merges exact squared distances, never rounded square roots.
// Candidate requests coalesce into the same batches as KNN requests of the
// same k.
func (s *Service) KNNCandidates(ctx context.Context, p geom.Point, k int) ([]heapx.Candidate, BatchInfo, error) {
	if err := s.checkPoint(p); err != nil {
		return nil, BatchInfo{}, err
	}
	if k < 1 {
		return nil, BatchInfo{}, fmt.Errorf("serve: k must be >= 1, got %d", k)
	}
	rep, err := s.submit(ctx, &request{kind: KindKNN, pt: p, k: k})
	return rep.cands, rep.info, err
}

// Range returns the items inside box.
func (s *Service) Range(ctx context.Context, box geom.Box) ([]core.Item, BatchInfo, error) {
	if err := s.checkPoint(box.Lo); err != nil {
		return nil, BatchInfo{}, err
	}
	if err := s.checkPoint(box.Hi); err != nil {
		return nil, BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindRange, box: box})
	return rep.items, rep.info, err
}

// Insert adds item to the tree as part of a coalesced update batch.
func (s *Service) Insert(ctx context.Context, item core.Item) (BatchInfo, error) {
	if err := s.checkPoint(item.P); err != nil {
		return BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindInsert, item: item})
	return rep.info, err
}

// InsertUnique adds item with set semantics: a no-op if an identical
// (ID, coordinates) item is already stored. The replicated cluster apply
// path uses this — together with Delete's ignore-absent semantics it makes
// every fanned write idempotent, so a write racing a peer-rebuild restore
// of the same cell can never double-apply. Local (single-shard) callers
// keep the multiset Insert.
func (s *Service) InsertUnique(ctx context.Context, item core.Item) (BatchInfo, error) {
	if err := s.checkPoint(item.P); err != nil {
		return BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindInsert, item: item, unique: true})
	return rep.info, err
}

// Delete removes the item matching item's coordinates and ID; absent items
// are silently ignored (BatchDelete semantics).
func (s *Service) Delete(ctx context.Context, item core.Item) (BatchInfo, error) {
	if err := s.checkPoint(item.P); err != nil {
		return BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindDelete, item: item})
	return rep.info, err
}

// Join answers a batch-probe spatial join for one probe point: every
// stored item within Euclidean distance radius (inclusive), in the
// canonical core.ItemLess order. Probes submitted concurrently with the
// same radius coalesce into a single core.ProbeJoin batch.
func (s *Service) Join(ctx context.Context, p geom.Point, radius float64) ([]core.Item, BatchInfo, error) {
	if err := s.checkPoint(p); err != nil {
		return nil, BatchInfo{}, err
	}
	if radius < 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, BatchInfo{}, fmt.Errorf("serve: join radius must be finite and >= 0, got %v", radius)
	}
	rep, err := s.submit(ctx, &request{kind: KindJoin, pt: p, radius: radius})
	return rep.items, rep.info, err
}

// Aggregate answers a windowed aggregation over box: the count and exact
// per-dimension coordinate sums of the stored items inside it. The raw
// BoxAggregate is returned (rather than a rounded centroid) so partial
// answers from different shards merge bit-identically.
func (s *Service) Aggregate(ctx context.Context, box geom.Box) (core.BoxAggregate, BatchInfo, error) {
	if err := s.checkPoint(box.Lo); err != nil {
		return core.BoxAggregate{}, BatchInfo{}, err
	}
	if err := s.checkPoint(box.Hi); err != nil {
		return core.BoxAggregate{}, BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindAggregate, box: box})
	if rep.agg == nil {
		return core.BoxAggregate{}, rep.info, err
	}
	return *rep.agg, rep.info, err
}

// Ingest adds item to the tree and tracks it for TTL expiry at the logical
// deadline expireAt. Deadlines are client-supplied logical time (compared
// against Expire's now with ≤), which keeps sweeps deterministic; callers
// wanting wall-clock TTLs pass UnixNano values.
func (s *Service) Ingest(ctx context.Context, item core.Item, expireAt int64) (BatchInfo, error) {
	if err := s.checkPoint(item.P); err != nil {
		return BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindIngest, item: item, expireAt: expireAt})
	return rep.info, err
}

// IngestUnique is Ingest with set semantics: the insert is skipped if an
// identical item is already stored, and the deadline is tracked only if no
// identical (item, deadline) entry exists. The cluster apply path's
// idempotent form of Ingest (see InsertUnique).
func (s *Service) IngestUnique(ctx context.Context, item core.Item, expireAt int64) (BatchInfo, error) {
	if err := s.checkPoint(item.P); err != nil {
		return BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindIngest, item: item, expireAt: expireAt, unique: true})
	return rep.info, err
}

// Expire sweeps every tracked ingest entry with deadline ≤ now, deleting
// the swept items from the tree as one write batch (WAL-logged before
// commit in durable mode). It returns the number of entries this request
// observed expiring: entries with deadline ≤ now that were popped during
// its batch, including ones attributed to a smaller now coalesced into the
// same batch.
func (s *Service) Expire(ctx context.Context, now int64) (int, BatchInfo, error) {
	rep, err := s.submit(ctx, &request{kind: KindExpire, now: now})
	return rep.expired, rep.info, err
}

// CellSnapshot is one partition cell's full replication state: the
// canonically sorted live multiset the half-open cell box owns with
// parallel expiry deadlines (math.MinInt64 = not expiry-tracked), plus the
// cell's orphan expiry entries — TTL entries whose item was since deleted
// through the plain delete path but which a future Expire sweep still pops
// and counts. Restoring both on a peer makes every later answer of the
// rebuilt replica, sweep counts included, bit-identical to the source.
type CellSnapshot struct {
	Items     []core.Item
	Deadlines []int64
	Orphans   []core.Item
	OrphanAts []int64
}

// SnapshotCell reads the cell's replication state as one consistent cut:
// executed on the executor, no write batch interleaves it. cellID only
// namespaces batching so different cells never coalesce; the box is
// authoritative (inclusive lower faces, exclusive upper faces — the
// partition's ownership convention).
func (s *Service) SnapshotCell(ctx context.Context, cellID int, cell geom.Box) (CellSnapshot, BatchInfo, error) {
	if err := s.checkCell(cellID, cell); err != nil {
		return CellSnapshot{}, BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindSnapshotCell, k: cellID, box: cell})
	snap := CellSnapshot{Items: rep.items, Deadlines: rep.deadlines, Orphans: rep.orphans, OrphanAts: rep.orphanAts}
	return snap, rep.info, err
}

// ChecksumCell summarizes the cell's replication state as a live-item
// count plus an order-independent digest, computed on the executor as one
// consistent read cut (a metered round, like any read batch). Two replicas
// answering with equal checksums hold, up to a ~2⁻⁶⁴ digest collision,
// cell states a RestoreCell between them would not change — the router's
// anti-entropy sweep and the rebuilder's skip-if-identical fast path both
// compare these.
func (s *Service) ChecksumCell(ctx context.Context, cellID int, cell geom.Box) (shard.CellChecksum, BatchInfo, error) {
	if err := s.checkCell(cellID, cell); err != nil {
		return shard.CellChecksum{}, BatchInfo{}, err
	}
	rep, err := s.submit(ctx, &request{kind: KindChecksumCell, k: cellID, box: cell})
	return rep.csum, rep.info, err
}

// RestoreCell atomically replaces the cell's local contents with a peer
// snapshot: every local item the half-open cell box owns is deleted and
// the snapshot items inserted as one write batch, WAL-logged at execution
// time before commit (so a torn rebuild stream that never reaches this
// call leaves the cell untouched, and a crash mid-restore recovers to one
// side or the other, never a mix). Expiry tracking for the cell — orphan
// entries included — is rebuilt from the snapshot. The returned changed
// flag is false when the local copy already matched, the rebuild
// convergence signal. The snapshot need not be sorted; the executor
// canonicalizes.
func (s *Service) RestoreCell(ctx context.Context, cellID int, cell geom.Box, snap CellSnapshot) (bool, BatchInfo, error) {
	if err := s.checkCell(cellID, cell); err != nil {
		return false, BatchInfo{}, err
	}
	if len(snap.Items) != len(snap.Deadlines) || len(snap.Orphans) != len(snap.OrphanAts) {
		return false, BatchInfo{}, fmt.Errorf("serve: restore of %d/%d items with %d/%d deadlines",
			len(snap.Items), len(snap.Deadlines), len(snap.Orphans), len(snap.OrphanAts))
	}
	for _, set := range [][]core.Item{snap.Items, snap.Orphans} {
		for i := range set {
			if err := s.checkPoint(set[i].P); err != nil {
				return false, BatchInfo{}, err
			}
			if !cell.ContainsHalfOpen(set[i].P) {
				return false, BatchInfo{}, fmt.Errorf("serve: restore item %d outside cell %d", set[i].ID, cellID)
			}
		}
	}
	rep, err := s.submit(ctx, &request{
		kind: KindRestoreCell, k: cellID, box: cell,
		items: snap.Items, deadlines: snap.Deadlines,
		orphans: snap.Orphans, orphanAts: snap.OrphanAts,
	})
	return rep.changed, rep.info, err
}

// MigrateCell atomically adopts a migrating cell region: the executor
// replays ops (the writes that raced the migration cut, in router ack
// order) on top of snap, then exact-sets the half-open cell box to the
// result with RestoreCell's one-batch multiset-diff apply — WAL-logged
// before commit, so a torn migration stream that never reaches this call
// leaves the region untouched. The returned changed flag is false when the
// local copy already matched (the destination was already a replica of the
// moving region — an overlap adopt is a no-op). snap items and orphans
// must lie inside cell; replayed ops are filtered to the box by the
// executor, so a ledger op straddling the cut needs no caller-side
// geometry.
func (s *Service) MigrateCell(ctx context.Context, cellID int, cell geom.Box, snap CellSnapshot, ops []shard.MigrateOp) (bool, BatchInfo, error) {
	if err := s.checkCell(cellID, cell); err != nil {
		return false, BatchInfo{}, err
	}
	if len(snap.Items) != len(snap.Deadlines) || len(snap.Orphans) != len(snap.OrphanAts) {
		return false, BatchInfo{}, fmt.Errorf("serve: migrate of %d/%d items with %d/%d deadlines",
			len(snap.Items), len(snap.Deadlines), len(snap.Orphans), len(snap.OrphanAts))
	}
	for _, set := range [][]core.Item{snap.Items, snap.Orphans} {
		for i := range set {
			if err := s.checkPoint(set[i].P); err != nil {
				return false, BatchInfo{}, err
			}
			if !cell.ContainsHalfOpen(set[i].P) {
				return false, BatchInfo{}, fmt.Errorf("serve: migrate item %d outside cell %d", set[i].ID, cellID)
			}
		}
	}
	for i := range ops {
		if err := s.checkPoint(ops[i].Item.P); err != nil {
			return false, BatchInfo{}, err
		}
	}
	rep, err := s.submit(ctx, &request{
		kind: KindMigrateCell, k: cellID, box: cell,
		items: snap.Items, deadlines: snap.Deadlines,
		orphans: snap.Orphans, orphanAts: snap.OrphanAts,
		ops: ops,
	})
	return rep.changed, rep.info, err
}

func (s *Service) checkCell(cellID int, cell geom.Box) error {
	if cellID < 0 {
		return fmt.Errorf("serve: negative cell id %d", cellID)
	}
	if cell.Dim() != s.tree.Dim() {
		return fmt.Errorf("serve: cell dimension %d, tree dimension %d", cell.Dim(), s.tree.Dim())
	}
	return nil
}

// TreeSize returns the live item count without touching the executor-owned
// tree: the executor refreshes a lock-free mirror after every write batch.
func (s *Service) TreeSize() int64 { return s.size.Load() }

// Dim returns the tree's dimension (immutable after construction).
func (s *Service) Dim() int { return s.tree.Dim() }

// Metrics returns the live aggregated serving metrics.
func (s *Service) Metrics() MetricsSnapshot {
	return s.metrics.snapshot(s.tree.Machine().SnapshotStats(), s.cfg)
}

// LatencyHistograms returns a copy of the per-kind service-latency
// histograms (nanosecond values). The shard wire path ships these to the
// router, whose /shardz mirrors per-shard quantiles; copies merge exactly.
func (s *Service) LatencyHistograms() map[string]*hist.Histogram {
	return s.metrics.latencySnapshot()
}

// Close stops admission, flushes every forming batch, waits for the
// executor to drain, and returns. In-flight requests all receive replies.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	close(s.closing)
	for key := range s.pending {
		s.sealLocked(key, "flush")
	}
	close(s.batchCh)
	s.mu.Unlock()
	<-s.done
	return nil
}

func (s *Service) checkPoint(p geom.Point) error {
	if len(p) != s.tree.Dim() {
		return fmt.Errorf("serve: point dimension %d, tree dimension %d", len(p), s.tree.Dim())
	}
	return nil
}
