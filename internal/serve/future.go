package serve

import (
	"context"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/heapx"
	"pimkd/internal/pim"
	"pimkd/internal/shard"
)

// OpKind identifies the homogeneous operation class of a request or batch.
type OpKind int

const (
	// KindLookup routes a point to its leaf and returns the leaf's items
	// (the paper's LeafSearch, Algorithm 4).
	KindLookup OpKind = iota
	// KindKNN is k-nearest-neighbor search (Theorem 4.5). Batches are
	// homogeneous in k as well as kind.
	KindKNN
	// KindRange is orthogonal range reporting (Lemma 4.7).
	KindRange
	// KindInsert is a batched insert (§4.2).
	KindInsert
	// KindDelete is a batched delete (§4.2).
	KindDelete
	// KindJoin is a batch-probe spatial join: all stored items within the
	// join radius of the probe point, canonically ordered. Probes sharing a
	// radius coalesce into one core.ProbeJoin batch.
	KindJoin
	// KindAggregate is windowed aggregation: count + exact coordinate sums
	// (centroid) of the stored items inside a query box.
	KindAggregate
	// KindIngest is a streaming-ingest insert: the item enters the tree and
	// is tracked for TTL expiry at a logical deadline.
	KindIngest
	// KindExpire sweeps tracked ingest entries whose deadline is ≤ the
	// request's logical now, deleting them from the tree.
	KindExpire
	// KindSnapshotCell reads one partition cell's contents for peer rebuild:
	// the canonically sorted multiset of items the half-open cell box owns,
	// with parallel expiry deadlines.
	KindSnapshotCell
	// KindChecksumCell summarizes one partition cell's replicated state as a
	// count + order-independent digest (anti-entropy). It reads exactly the
	// state KindSnapshotCell would ship, so checksum equality between two
	// replicas means a RestoreCell between them would change nothing.
	KindChecksumCell
	// KindRestoreCell atomically replaces one partition cell's contents
	// with a peer's snapshot (WAL-logged at execution time, like expire).
	// Batches of this kind are labeled fault/rebuild/cell=N so the
	// supervisor's metered accounting attributes rebuild cost exactly.
	KindRestoreCell
	// KindMigrateCell atomically adopts a migrating cell region during an
	// online rebalance: the staged snapshot pages plus the replayed write
	// ledger become the region's exact contents, with RestoreCell's
	// one-batch multiset-diff apply. Labeled shard/migrate/cell=N so the
	// migration's metered cost is attributable per cell.
	KindMigrateCell
	numKinds
)

func (k OpKind) String() string {
	switch k {
	case KindLookup:
		return "lookup"
	case KindKNN:
		return "knn"
	case KindRange:
		return "range"
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindJoin:
		return "join"
	case KindAggregate:
		return "aggregate"
	case KindIngest:
		return "ingest"
	case KindExpire:
		return "expire"
	case KindSnapshotCell:
		return "snapshot-cell"
	case KindChecksumCell:
		return "checksum-cell"
	case KindRestoreCell:
		return "restore-cell"
	case KindMigrateCell:
		return "migrate-cell"
	}
	return "unknown"
}

// IsRead reports whether the kind leaves the tree unmodified. Read batches
// may share a scheduling epoch; write batches never do.
func (k OpKind) IsRead() bool {
	switch k {
	case KindLookup, KindKNN, KindRange, KindJoin, KindAggregate, KindSnapshotCell, KindChecksumCell:
		return true
	}
	return false
}

// Neighbor is one kNN result: the stored item's ID and its Euclidean
// distance from the query point.
type Neighbor struct {
	ID   int32   `json:"id"`
	Dist float64 `json:"dist"`
}

// BatchInfo describes, to the caller of a single request, the batch its
// request was executed in — the coalescing observability surface. Cost is
// the whole batch's PIM-Model stats delta; dividing by Size gives the
// caller's attributed share.
type BatchInfo struct {
	// Epoch is the scheduling epoch the batch executed in.
	Epoch int64 `json:"epoch"`
	// Kind is the batch's operation kind.
	Kind string `json:"kind"`
	// Size is the number of requests coalesced into the batch.
	Size int `json:"size"`
	// Linger is how long the batch's oldest request waited before the
	// batch was sealed.
	Linger time.Duration `json:"linger_ns"`
	// Cost is the pim.Stats delta metered across the batch execution.
	Cost pim.Stats `json:"cost"`
}

// BatchRecord is the executor's full per-batch trace entry, fed to the
// metrics aggregator, the optional Config.OnBatch observer, and the
// /statsz sample.
type BatchRecord struct {
	Epoch int64  `json:"epoch"`
	Kind  string `json:"kind"`
	// K is the kNN parameter for knn batches, 0 otherwise.
	K    int `json:"k,omitempty"`
	Size int `json:"size"`
	// Linger is the wait of the batch's oldest request until sealing.
	Linger time.Duration `json:"linger_ns"`
	// SealedBy is what closed the batch: "full" (reached MaxBatch),
	// "linger" (deadline), or "flush" (service shutdown).
	SealedBy string `json:"sealed_by"`
	// Cost is the PIM-Model stats delta of the batch execution.
	Cost pim.Stats `json:"cost"`
	// CommBalance is max/mean per-module communication within the batch
	// (Definition 1 PIM-balance: O(1) means no straggler module).
	CommBalance float64 `json:"comm_balance"`
}

// request is one admitted operation waiting for (or being) executed.
type request struct {
	kind     OpKind
	pt       geom.Point // lookup, knn, join
	k        int        // knn
	box      geom.Box   // range, aggregate
	item     core.Item  // insert, delete, ingest
	radius   float64    // join
	expireAt int64      // ingest: logical TTL deadline
	now      int64      // expire: logical sweep horizon
	// unique selects set semantics for insert/ingest: the op is a no-op if
	// an identical (ID, coordinates) item is already stored (and, for
	// ingest, an identical deadline entry already tracked). The replicated
	// cluster apply path uses this so a fanned write and a peer-rebuild
	// restore of the same item cannot double-apply.
	unique bool
	// cell state for snapshot-cell / restore-cell (cell id travels in
	// batchKey.k so distinct cells never coalesce). box holds the cell's
	// half-open box; the rest is the restore payload.
	items     []core.Item
	deadlines []int64
	orphans   []core.Item
	orphanAts []int64
	// ops is the migrate-cell write ledger: the inserts/deletes that raced
	// the migration cut, replayed in order onto the staged snapshot before
	// the exact-set apply.
	ops []shard.MigrateOp
	enq time.Time

	// ctx is the submitter's context. The executor consults it when the
	// batch comes up for execution and drops requests whose callers have
	// already gone away instead of paying machine work for them.
	ctx context.Context

	// done receives exactly one reply; it is buffered so the executor
	// never blocks on a caller that abandoned its context.
	done chan reply
}

// reply is the fanned-out result of one request.
type reply struct {
	items     []core.Item // lookup, range, join
	neighbors []Neighbor  // knn
	// cands is the knn result in raw (dist2, id) form — what the shard wire
	// path returns so a router can merge shards without re-deriving dist2
	// from a rounded sqrt.
	cands []heapx.Candidate
	// agg carries the exact windowed-aggregation answer; shipping the raw
	// superaccumulator (not a rounded centroid) is what lets a router merge
	// shard partials bit-identically.
	agg *core.BoxAggregate
	// expired is the number of tracked ingest entries this expire request
	// swept (entries with deadline ≤ the request's now, popped this batch).
	expired int
	// deadlines parallels items for snapshot-cell replies (math.MinInt64
	// sentinel = no TTL entry); orphans/orphanAts carry the cell's expiry
	// entries whose item is no longer live.
	deadlines []int64
	orphans   []core.Item
	orphanAts []int64
	// changed reports whether a restore-cell actually modified the cell
	// (false = the local copy already matched the peer snapshot — the
	// rebuild convergence signal).
	changed bool
	// csum is the checksum-cell answer.
	csum shard.CellChecksum
	info BatchInfo
	err  error
}

// batchKey groups coalescible requests: same kind, for kNN the same k
// (core.KNNBatch answers a whole batch at a single k), and for joins the
// same radius (core.ProbeJoin probes a whole batch at a single radius).
type batchKey struct {
	kind OpKind
	k    int
	// radiusBits is the join radius's IEEE bits (float64 is not a valid
	// map-key discriminator when NaN; radii are validated finite ≥ 0).
	radiusBits uint64
	// unique separates set-semantics insert/ingest batches from multiset
	// ones: they execute (and WAL-log) differently, so they never coalesce.
	unique bool
}

// batch is a sealed set of homogeneous requests ready for execution.
type batch struct {
	key      batchKey
	reqs     []*request
	firstEnq time.Time
	sealed   time.Time
	sealedBy string
}
