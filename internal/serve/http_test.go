package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func TestHTTPHandler(t *testing.T) {
	svc, pts := newTestService(t, 300, Config{MaxBatch: 16, MaxLinger: time.Millisecond})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := fmt.Fprint(&buf, readAll(t, resp)); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, buf.String())
		}
		return []byte(buf.String())
	}

	// kNN round trip: query at a stored point, nearest neighbor is itself.
	q := pts[7]
	var knnResp struct {
		Neighbors []Neighbor `json:"neighbors"`
		Batch     BatchInfo  `json:"batch"`
	}
	body := get(fmt.Sprintf("/knn?p=%g,%g&k=2", q[0], q[1]))
	if err := json.Unmarshal(body, &knnResp); err != nil {
		t.Fatalf("knn decode: %v in %s", err, body)
	}
	if len(knnResp.Neighbors) != 2 || knnResp.Neighbors[0].ID != 7 || !almostEqual(knnResp.Neighbors[0].Dist, 0) {
		t.Fatalf("knn response %+v", knnResp)
	}
	if knnResp.Batch.Size < 1 || knnResp.Batch.Kind != "knn" {
		t.Fatalf("knn batch info %+v", knnResp.Batch)
	}

	// Insert via POST, then lookup must see it.
	resp, err := http.PostForm(ts.URL+"/insert", url.Values{"id": {"4242"}, "p": {"0.31,0.62"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	var lookupResp struct {
		Items []wireItem `json:"items"`
		Batch BatchInfo  `json:"batch"`
	}
	if err := json.Unmarshal(get("/lookup?p=0.31,0.62"), &lookupResp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range lookupResp.Items {
		if it.ID == 4242 {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted item missing from lookup: %+v", lookupResp.Items)
	}

	// Range with an inverted box is a 400; GET on /insert is a 405.
	if resp, _ := http.Get(ts.URL + "/range?lo=0.5,0.5&hi=0.1,0.9"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted box status %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/insert?id=1&p=0.1,0.1"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET insert status %d", resp.StatusCode)
	}

	// /statsz reflects the traffic above.
	var snap MetricsSnapshot
	if err := json.Unmarshal(get("/statsz"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.TotalRequests < 3 || snap.MaxBatch != 16 {
		t.Fatalf("statsz %+v", snap)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
