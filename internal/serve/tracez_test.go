package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pimkd/internal/trace"
)

func TestTracezEndpoint(t *testing.T) {
	svc, pts := newTestService(t, 256, Config{
		MaxBatch: 8, MaxLinger: time.Millisecond, TraceCapacity: 1 << 12,
	})
	defer svc.Close()
	if svc.Tracer() == nil {
		t.Fatal("TraceCapacity > 0 did not attach a tracer")
	}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	// Drive a few batches of different kinds through the service so the
	// trace has serve/<kind>/batch=<n> labels to report.
	for i := 0; i < 4; i++ {
		q := pts[i]
		resp, err := http.Get(fmt.Sprintf("%s/knn?p=%g,%g&k=2", ts.URL, q[0], q[1]))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(fmt.Sprintf("%s/lookup?p=%g,%g", ts.URL, pts[0][0], pts[0][1]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// JSON report view.
	resp, err = http.Get(ts.URL + "/tracez?k=3")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez: %d %s", resp.StatusCode, body)
	}
	var view struct {
		Seen    int64         `json:"seen"`
		Dropped int64         `json:"dropped"`
		Totals  trace.Totals  `json:"totals"`
		Report  *trace.Report `json:"report"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("decode: %v in %s", err, body)
	}
	if view.Seen == 0 || view.Report == nil || len(view.Report.Labels) == 0 {
		t.Fatalf("empty trace view: %s", body)
	}
	var sawKNN, sawLookup bool
	for _, ls := range view.Report.Labels {
		if strings.HasPrefix(ls.Label, "serve/knn/batch=") {
			sawKNN = true
		}
		if strings.HasPrefix(ls.Label, "serve/lookup/batch=") {
			sawLookup = true
		}
	}
	if !sawKNN || !sawLookup {
		t.Fatalf("missing per-batch labels (knn=%v lookup=%v) in %s", sawKNN, sawLookup, body)
	}

	// Perfetto download view: valid JSON that round-trips into the same
	// number of retained records.
	resp, err = http.Get(ts.URL + "/tracez?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez perfetto: %d", resp.StatusCode)
	}
	if !json.Valid([]byte(raw)) {
		t.Fatal("perfetto export is not valid JSON")
	}
	recs, err := trace.ReadPerfetto(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.VerifyRecords(recs); err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != view.Seen-view.Dropped {
		// More rounds may have been observed between the two requests, but
		// never fewer than the earlier report saw retained.
		if int64(len(recs)) < view.Seen-view.Dropped {
			t.Fatalf("perfetto export has %d records, report saw %d retained", len(recs), view.Seen-view.Dropped)
		}
	}
}

func TestTracezDisabled(t *testing.T) {
	svc, _ := newTestService(t, 64, Config{MaxBatch: 4, MaxLinger: time.Millisecond})
	defer svc.Close()
	if svc.Tracer() != nil {
		t.Fatal("tracer attached without TraceCapacity")
	}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/tracez with tracing disabled: %d want 404", resp.StatusCode)
	}
}
