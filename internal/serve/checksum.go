package serve

import (
	"encoding/binary"
	"math"

	"pimkd/internal/core"
	"pimkd/internal/shard"
)

// cellChecksum folds one cell's full replicated state — live items with
// their attributed expiry deadlines, plus orphaned expiry entries — into a
// count + order-independent 64-bit digest. Each element is hashed
// independently (FNV-1a 64 over a tagged canonical byte string) and the
// per-element hashes combine by wrapping sum, so the digest is invariant
// under element order but, unlike XOR, does not cancel duplicate pairs —
// a multiset that gained two copies of the same item still changes.
//
// Coverage matches restoreCell's diff exactly (item identity = id +
// priority bits + coordinate bits; deadline attribution; orphan entries),
// so checksum equality between two replicas means a RestoreCell between
// them would apply an empty diff, up to a ~2⁻⁶⁴ digest collision.
func cellChecksum(items []core.Item, deadlines []int64, orphans []core.Item, orphanAts []int64) shard.CellChecksum {
	var digest uint64
	var buf []byte
	for i, it := range items {
		buf = appendChecksumElem(buf[:0], 0x01, it, deadlines[i])
		digest += fnv1a64(buf)
	}
	for i, it := range orphans {
		buf = appendChecksumElem(buf[:0], 0x02, it, orphanAts[i])
		digest += fnv1a64(buf)
	}
	return shard.CellChecksum{Count: uint64(len(items)), Digest: digest}
}

// appendChecksumElem serializes one element in the same canonical form the
// wire uses for items (id, priority bits, coordinate bits), prefixed by a
// domain tag (live item vs orphan entry) and suffixed by the deadline.
func appendChecksumElem(buf []byte, tag byte, it core.Item, at int64) []byte {
	buf = append(buf, tag)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(it.ID))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.Priority))
	for _, v := range it.P {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return binary.LittleEndian.AppendUint64(buf, uint64(at))
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}
