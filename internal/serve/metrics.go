package serve

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"pimkd/internal/hist"
	"pimkd/internal/pim"
)

// sampleSize is the reservoir capacity for the batch-record sample exposed
// on /statsz.
const sampleSize = 32

// metrics aggregates per-batch records. It is written by the executor
// goroutine and read by Metrics callers, so it carries its own lock.
type metrics struct {
	mu      sync.Mutex
	rng     *rand.Rand
	perKind map[string]*kindAgg
	// lat holds per-kind service latency (admission → reply) in HDR-style
	// fixed-layout histograms, the source of the /statsz p50/p99/p999.
	lat map[string]*hist.Histogram

	epochs        int64
	totalRequests int64
	totalBatches  int64

	// Robustness counters (see Robustness).
	sheds           int64
	canceledReqs    int64
	batchRetries    int64
	batchFaults     int64
	batchPanics     int64
	persistFailures int64

	// sample is a uniform reservoir over all batch records, seeded by
	// Config.Seed so a replayed trace exposes an identical sample.
	sample []BatchRecord
	seen   int64
}

// kindAgg is the per-operation-kind aggregate.
type kindAgg struct {
	requests     int64
	batches      int64
	maxBatchSize int
	sealedFull   int64
	sealedLinger int64
	sealedFlush  int64
	sumLinger    time.Duration
	maxLinger    time.Duration
	cost         pim.Stats
	sumBalance   float64
}

func newMetrics(rng *rand.Rand) *metrics {
	return &metrics{rng: rng, perKind: map[string]*kindAgg{}, lat: map[string]*hist.Histogram{}}
}

// observeLatency records one request's service latency (admission to reply
// delivery) into its kind's histogram.
func (m *metrics) observeLatency(kind string, d time.Duration) {
	m.mu.Lock()
	h := m.lat[kind]
	if h == nil {
		h = &hist.Histogram{}
		m.lat[kind] = h
	}
	h.Record(int64(d))
	m.mu.Unlock()
}

// latencySnapshot returns a copy of the per-kind latency histograms (for
// the shard stats wire path, which re-quantizes on the router side).
func (m *metrics) latencySnapshot() map[string]*hist.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*hist.Histogram, len(m.lat))
	for k, h := range m.lat {
		c := *h
		out[k] = &c
	}
	return out
}

func (m *metrics) bump(f func(*metrics)) {
	m.mu.Lock()
	f(m)
	m.mu.Unlock()
}

// shed counts a submission rejected at the ShedHighWater mark.
func (m *metrics) shed() { m.bump(func(m *metrics) { m.sheds++ }) }

// canceled counts a request whose caller's context ended before execution
// (withdrawn from a forming batch, or pruned by the executor).
func (m *metrics) canceled() { m.bump(func(m *metrics) { m.canceledReqs++ }) }

// batchRetried counts one re-execution of a read batch after a transient
// fault.
func (m *metrics) batchRetried() { m.bump(func(m *metrics) { m.batchRetries++ }) }

// batchFaulted counts a batch execution ended by a contained machine fault.
func (m *metrics) batchFaulted() { m.bump(func(m *metrics) { m.batchFaults++ }) }

// batchPanicked counts a batch execution ended by a non-fault panic.
func (m *metrics) batchPanicked() { m.bump(func(m *metrics) { m.batchPanics++ }) }

// persistFailed counts a write batch refused because its WAL append failed.
func (m *metrics) persistFailed() { m.bump(func(m *metrics) { m.persistFailures++ }) }

func (m *metrics) record(rec BatchRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a := m.perKind[rec.Kind]
	if a == nil {
		a = &kindAgg{}
		m.perKind[rec.Kind] = a
	}
	a.requests += int64(rec.Size)
	a.batches++
	if rec.Size > a.maxBatchSize {
		a.maxBatchSize = rec.Size
	}
	switch rec.SealedBy {
	case "full":
		a.sealedFull++
	case "linger":
		a.sealedLinger++
	default:
		a.sealedFlush++
	}
	a.sumLinger += rec.Linger
	if rec.Linger > a.maxLinger {
		a.maxLinger = rec.Linger
	}
	a.cost = a.cost.Add(rec.Cost)
	a.sumBalance += rec.CommBalance

	m.totalRequests += int64(rec.Size)
	m.totalBatches++
	if rec.Epoch > m.epochs {
		m.epochs = rec.Epoch
	}

	// Reservoir sampling (Vitter's algorithm R) with the service rng.
	m.seen++
	if len(m.sample) < sampleSize {
		m.sample = append(m.sample, rec)
	} else if j := m.rng.Int63n(m.seen); j < sampleSize {
		m.sample[j] = rec
	}
}

// KindStats is the exported per-kind aggregate served on /statsz.
type KindStats struct {
	Kind          string    `json:"kind"`
	Requests      int64     `json:"requests"`
	Batches       int64     `json:"batches"`
	MeanBatchSize float64   `json:"mean_batch_size"`
	MaxBatchSize  int       `json:"max_batch_size"`
	SealedFull    int64     `json:"sealed_full"`
	SealedLinger  int64     `json:"sealed_linger"`
	SealedFlush   int64     `json:"sealed_flush"`
	MeanLinger    float64   `json:"mean_linger_us"`
	MaxLinger     float64   `json:"max_linger_us"`
	Cost          pim.Stats `json:"cost"`
	// CommPerRequest is off-chip words per request — the quantity the
	// paper bounds at O(log* P) for LeafSearch and O(k log* P) for kNN.
	CommPerRequest float64 `json:"comm_per_request"`
	// PIMTimePerRequest and RoundsPerBatch expose the straggler and BSP
	// dimensions of the same deltas.
	PIMTimePerRequest float64 `json:"pim_time_per_request"`
	RoundsPerBatch    float64 `json:"rounds_per_batch"`
	// MeanCommBalance averages per-batch max/mean module communication;
	// O(1) is Definition 1 PIM-balance.
	MeanCommBalance float64 `json:"mean_comm_balance"`
	// Latency quantiles in microseconds, measured service-side from
	// admission to reply delivery over every request of this kind (an
	// HDR-style histogram, not a sample — relative error ≤ ~3%).
	LatencyCount int64   `json:"latency_count"`
	P50US        float64 `json:"p50_us"`
	P90US        float64 `json:"p90_us"`
	P99US        float64 `json:"p99_us"`
	P999US       float64 `json:"p999_us"`
	MaxUS        float64 `json:"max_us"`
}

// Robustness is the fault-handling slice of the /statsz payload.
type Robustness struct {
	// Sheds counts submissions rejected above ShedHighWater (503s).
	Sheds int64 `json:"sheds"`
	// CanceledRequests counts requests dropped because their caller's
	// context ended before execution.
	CanceledRequests int64 `json:"canceled_requests"`
	// BatchRetries counts read-batch re-executions after transient faults.
	BatchRetries int64 `json:"batch_retries"`
	// BatchFaults counts batch executions ended by a contained machine
	// fault (module crash or round timeout).
	BatchFaults int64 `json:"batch_faults"`
	// BatchPanics counts batch executions ended by a non-fault panic.
	BatchPanics int64 `json:"batch_panics"`
	// PersistFailures counts write batches refused because their
	// write-ahead-log append failed (durable-write mode only).
	PersistFailures int64 `json:"persist_failures"`
}

// MetricsSnapshot is the full /statsz payload.
type MetricsSnapshot struct {
	MaxBatch           int           `json:"max_batch"`
	MaxLingerUS        float64       `json:"max_linger_us"`
	MaxPending         int           `json:"max_pending"`
	Seed               int64         `json:"seed"`
	Epochs             int64         `json:"epochs"`
	TotalRequests      int64         `json:"total_requests"`
	TotalBatches       int64         `json:"total_batches"`
	MeanBatchSize      float64       `json:"mean_batch_size"`
	Robustness         Robustness    `json:"robustness"`
	Kinds              []KindStats   `json:"kinds"`
	Machine            pim.Stats     `json:"machine_totals"`
	MachineCommBalance float64       `json:"machine_comm_balance"`
	SampledBatches     []BatchRecord `json:"sampled_batches"`
}

func (m *metrics) snapshot(mach pim.Snapshot, cfg Config) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MetricsSnapshot{
		MaxBatch:      cfg.MaxBatch,
		MaxLingerUS:   float64(cfg.MaxLinger) / float64(time.Microsecond),
		MaxPending:    cfg.MaxPending,
		Seed:          cfg.Seed,
		Epochs:        m.epochs,
		TotalRequests: m.totalRequests,
		TotalBatches:  m.totalBatches,
		Robustness: Robustness{
			Sheds:            m.sheds,
			CanceledRequests: m.canceledReqs,
			BatchRetries:     m.batchRetries,
			BatchFaults:      m.batchFaults,
			BatchPanics:      m.batchPanics,
			PersistFailures:  m.persistFailures,
		},
		Machine:            mach.Stats,
		MachineCommBalance: pim.MaxLoadRatio(mach.ModuleComm),
		SampledBatches:     append([]BatchRecord(nil), m.sample...),
	}
	if m.totalBatches > 0 {
		out.MeanBatchSize = float64(m.totalRequests) / float64(m.totalBatches)
	}
	for kind, a := range m.perKind {
		ks := KindStats{
			Kind:         kind,
			Requests:     a.requests,
			Batches:      a.batches,
			MaxBatchSize: a.maxBatchSize,
			SealedFull:   a.sealedFull,
			SealedLinger: a.sealedLinger,
			SealedFlush:  a.sealedFlush,
			MaxLinger:    float64(a.maxLinger) / float64(time.Microsecond),
			Cost:         a.cost,
		}
		if a.batches > 0 {
			ks.MeanBatchSize = float64(a.requests) / float64(a.batches)
			ks.MeanLinger = float64(a.sumLinger) / float64(a.batches) / float64(time.Microsecond)
			ks.RoundsPerBatch = float64(a.cost.Rounds) / float64(a.batches)
			ks.MeanCommBalance = a.sumBalance / float64(a.batches)
		}
		if a.requests > 0 {
			ks.CommPerRequest = float64(a.cost.Communication) / float64(a.requests)
			ks.PIMTimePerRequest = float64(a.cost.PIMTime) / float64(a.requests)
		}
		if h := m.lat[kind]; h != nil && h.Count() > 0 {
			ks.LatencyCount = h.Count()
			ks.P50US = float64(h.Quantile(0.50)) / float64(time.Microsecond)
			ks.P90US = float64(h.Quantile(0.90)) / float64(time.Microsecond)
			ks.P99US = float64(h.Quantile(0.99)) / float64(time.Microsecond)
			ks.P999US = float64(h.Quantile(0.999)) / float64(time.Microsecond)
			ks.MaxUS = float64(h.Max()) / float64(time.Microsecond)
		}
		out.Kinds = append(out.Kinds, ks)
	}
	sort.Slice(out.Kinds, func(i, j int) bool { return out.Kinds[i].Kind < out.Kinds[j].Kind })
	return out
}
