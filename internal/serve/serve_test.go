package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/pim"
	"pimkd/internal/workload"
)

// newTestService builds a small uniform tree and wraps it in a Service.
func newTestService(t testing.TB, n int, cfg Config) (*Service, []geom.Point) {
	t.Helper()
	const dim, p = 2, 8
	mach := pim.NewMachine(p, 1<<20)
	tree := core.New(core.Config{Dim: dim, Seed: 11}, mach)
	pts := workload.Uniform(n, dim, 13)
	items := make([]core.Item, n)
	for i, pt := range pts {
		items[i] = core.Item{P: pt, ID: int32(i)}
	}
	tree.Build(items)
	return New(cfg, tree), pts
}

func TestFullSeal(t *testing.T) {
	// With an effectively infinite linger, progress requires the MaxBatch
	// seal path: 16 concurrent lookups must form two full batches of 8.
	svc, pts := newTestService(t, 512, Config{MaxBatch: 8, MaxLinger: time.Hour})
	defer svc.Close()

	var wg sync.WaitGroup
	infos := make([]BatchInfo, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, info, err := svc.Lookup(context.Background(), pts[i])
			if err != nil {
				t.Errorf("lookup %d: %v", i, err)
			}
			infos[i] = info
		}(i)
	}
	wg.Wait()
	for i, info := range infos {
		if info.Size != 8 {
			t.Fatalf("request %d rode a batch of size %d, want 8", i, info.Size)
		}
	}
	snap := svc.Metrics()
	if snap.TotalBatches != 2 || snap.TotalRequests != 16 {
		t.Fatalf("batches=%d requests=%d, want 2/16", snap.TotalBatches, snap.TotalRequests)
	}
	if snap.Kinds[0].SealedFull != 2 {
		t.Fatalf("sealed_full=%d, want 2", snap.Kinds[0].SealedFull)
	}
}

func TestLingerSeal(t *testing.T) {
	// A lone request must not wait for MaxBatch company: the linger timer
	// seals its singleton batch.
	svc, pts := newTestService(t, 256, Config{MaxBatch: 1024, MaxLinger: 5 * time.Millisecond})
	defer svc.Close()

	start := time.Now()
	items, info, err := svc.Lookup(context.Background(), pts[3])
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("singleton lookup took %v", elapsed)
	}
	if info.Size != 1 {
		t.Fatalf("singleton batch size %d", info.Size)
	}
	found := false
	for _, it := range items {
		if it.ID == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("lookup did not return the stored item")
	}
	snap := svc.Metrics()
	if snap.Kinds[0].SealedLinger != 1 {
		t.Fatalf("sealed_linger=%d, want 1", snap.Kinds[0].SealedLinger)
	}
}

func TestReadYourWrites(t *testing.T) {
	svc, _ := newTestService(t, 256, Config{MaxBatch: 16, MaxLinger: time.Millisecond})
	defer svc.Close()
	ctx := context.Background()

	it := core.Item{P: geom.Point{0.123, 0.456}, ID: 9001}
	if _, err := svc.Insert(ctx, it); err != nil {
		t.Fatal(err)
	}
	items, _, err := svc.Lookup(ctx, it.P)
	if err != nil {
		t.Fatal(err)
	}
	if !containsID(items, 9001) {
		t.Fatal("inserted item not visible to a later lookup")
	}
	// kNN at the exact point must report it at distance 0, sorted first.
	ns, _, err := svc.KNN(ctx, it.P, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 || ns[0].ID != 9001 || ns[0].Dist != 0 {
		t.Fatalf("knn at stored point: %+v", ns)
	}
	if _, err := svc.Delete(ctx, it); err != nil {
		t.Fatal(err)
	}
	items, _, err = svc.Lookup(ctx, it.P)
	if err != nil {
		t.Fatal(err)
	}
	if containsID(items, 9001) {
		t.Fatal("deleted item still visible")
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	svc, pts := newTestService(t, 400, Config{MaxBatch: 8, MaxLinger: time.Millisecond})
	defer svc.Close()
	box := geom.NewBox(geom.Point{0.2, 0.2}, geom.Point{0.6, 0.5})
	items, _, err := svc.Range(context.Background(), box)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pts {
		if box.Contains(p) {
			want++
		}
	}
	if len(items) != want {
		t.Fatalf("range returned %d items, brute force says %d", len(items), want)
	}
	for _, it := range items {
		if !box.Contains(it.P) {
			t.Fatalf("range reported item outside the box: %v", it.P)
		}
	}
}

func TestKNNBatchesHomogeneousInK(t *testing.T) {
	// Concurrent kNN at k=2 and k=4 must never share a batch; each reply
	// carries exactly its own k results.
	var mu sync.Mutex
	var recs []BatchRecord
	svc, pts := newTestService(t, 512, Config{
		MaxBatch: 64, MaxLinger: time.Millisecond,
		OnBatch: func(r BatchRecord) { mu.Lock(); recs = append(recs, r); mu.Unlock() },
	})
	defer svc.Close()

	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 2
			if i%2 == 1 {
				k = 4
			}
			ns, _, err := svc.KNN(context.Background(), pts[i], k)
			if err != nil {
				t.Errorf("knn: %v", err)
				return
			}
			if len(ns) != k {
				t.Errorf("knn k=%d returned %d neighbors", k, len(ns))
			}
			for j := 1; j < len(ns); j++ {
				if ns[j].Dist < ns[j-1].Dist {
					t.Errorf("knn results unsorted: %v", ns)
				}
			}
		}(i)
	}
	wg.Wait()
	svc.Close()
	for _, r := range recs {
		if r.Kind == "knn" && r.K != 2 && r.K != 4 {
			t.Fatalf("knn batch with unexpected k=%d", r.K)
		}
	}
}

func TestCloseFlushesPending(t *testing.T) {
	svc, pts := newTestService(t, 256, Config{MaxBatch: 1024, MaxLinger: time.Hour})

	var wg sync.WaitGroup
	infos := make([]BatchInfo, 3)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, infos[i], errs[i] = svc.Lookup(context.Background(), pts[i])
		}(i)
	}
	// Give the submitters time to enqueue, then flush via Close.
	time.Sleep(50 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("flushed request %d errored: %v", i, errs[i])
		}
		if infos[i].Size != 3 {
			t.Fatalf("flushed batch size %d, want 3", infos[i].Size)
		}
	}
	snap := svc.Metrics()
	if snap.Kinds[0].SealedFlush != 1 {
		t.Fatalf("sealed_flush=%d, want 1", snap.Kinds[0].SealedFlush)
	}
	if _, _, err := svc.Lookup(context.Background(), pts[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close lookup: %v, want ErrClosed", err)
	}
}

func TestBackpressureBlocksAdmission(t *testing.T) {
	// Two admitted requests exhaust MaxPending; a third submitter must
	// block at admission and honor its context deadline.
	svc, pts := newTestService(t, 256, Config{MaxBatch: 8, MaxLinger: 300 * time.Millisecond, MaxPending: 2})
	defer svc.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := svc.Lookup(context.Background(), pts[i]); err != nil {
				t.Errorf("admitted lookup: %v", err)
			}
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // both admitted, batch still lingering
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := svc.Lookup(ctx, pts[2])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("overloaded submit: %v, want DeadlineExceeded", err)
	}
	wg.Wait()
}

func TestBadRequests(t *testing.T) {
	svc, pts := newTestService(t, 64, Config{MaxBatch: 8, MaxLinger: time.Millisecond})
	defer svc.Close()
	ctx := context.Background()
	if _, _, err := svc.Lookup(ctx, geom.Point{1, 2, 3}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, _, err := svc.KNN(ctx, pts[0], 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := svc.Lookup(canceled, pts[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submit: %v", err)
	}
}

func containsID(items []core.Item, id int32) bool {
	for _, it := range items {
		if it.ID == id {
			return true
		}
	}
	return false
}

// almostEqual guards the float fields surfaced through JSON round trips.
func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
