package serve

import (
	"time"

	"pimkd/internal/core"
	"pimkd/internal/persist"
)

// Durable-write mode. When Config.Persist is set, the executor appends every
// sealed write batch to the write-ahead log *before* committing it to the
// machine — a request is only ever acknowledged after its batch is durable —
// and a background checkpointer periodically folds the log into a fresh
// snapshot without blocking the executor:
//
//	executor (owns tree):  LogBatch → BatchInsert/Delete → reply → maybe
//	                       BeginCheckpoint (cheap: capture items + rotate WAL)
//	checkpointer:          Checkpoint.Write (heavy: encode, fsync, rename, GC)
//
// BeginCheckpoint runs between batches on the executor, so the captured
// state is exactly "all logged records applied"; the heavy write overlaps
// subsequent batches. Close drains the checkpointer and syncs the WAL before
// returning, so no acknowledged write or started checkpoint is ever in
// flight after shutdown.

// logDurable appends a write batch to the WAL. Called by the executor with
// the batch's live requests already filtered, before any machine work.
func (s *Service) logDurable(b *batch) error {
	op := persist.OpInsert
	if b.key.kind == KindDelete {
		op = persist.OpDelete
	}
	items := make([]core.Item, len(b.reqs))
	for i, req := range b.reqs {
		items[i] = req.item
	}
	if _, err := s.cfg.Persist.LogBatch(op, items); err != nil {
		s.metrics.persistFailed()
		return err
	}
	return nil
}

// maybeCheckpoint runs on the executor after each committed write batch and
// starts a checkpoint when either trigger (batch count, wall interval) is
// due. The cheap capture-and-rotate happens inline; the heavy write is
// handed to the checkpointer goroutine. If the previous checkpoint is still
// writing, the trigger stays armed and fires on a later batch.
func (s *Service) maybeCheckpoint() {
	s.writesSinceCkpt++
	due := (s.cfg.CheckpointEvery > 0 && s.writesSinceCkpt >= s.cfg.CheckpointEvery) ||
		(s.cfg.CheckpointInterval > 0 && time.Since(s.lastCkpt) >= s.cfg.CheckpointInterval)
	if !due {
		return
	}
	ckpt, err := s.cfg.Persist.BeginCheckpoint(s.tree)
	if err != nil {
		return
	}
	s.writesSinceCkpt = 0
	s.lastCkpt = time.Now()
	// Never blocks: BeginCheckpoint's in-flight gate admits a new
	// checkpoint only after the previous Write consumed its slot.
	s.persistCh <- ckpt
}

// runCheckpointer performs checkpoint writes off the executor's critical
// path. Write errors are recorded in the store's status (LastCheckpointErr)
// and surfaced on /persistz.
func (s *Service) runCheckpointer() {
	defer close(s.persistDone)
	for c := range s.persistCh {
		_ = c.Write()
	}
}

// drainPersist runs as the executor exits, after the batch channel is fully
// drained: every acknowledged write has been logged and committed. It stops
// the checkpointer, waits for any in-flight snapshot write to land, and
// syncs the WAL tail — the guarantee behind "Close returns ⇒ acknowledged
// state is durable".
func (s *Service) drainPersist() {
	if s.cfg.Persist == nil {
		return
	}
	close(s.persistCh)
	<-s.persistDone
	_ = s.cfg.Persist.Sync()
}

// PersistStatus returns the durability store's status; ok is false when the
// service runs without persistence.
func (s *Service) PersistStatus() (persist.Status, bool) {
	if s.cfg.Persist == nil {
		return persist.Status{}, false
	}
	return s.cfg.Persist.Status(), true
}
