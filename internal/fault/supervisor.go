package fault

import (
	"sync"
	"time"

	"pimkd/internal/pim"
)

// Rebuilder restores one module's shard from host-side authoritative state.
// core.Tree implements it (RecoverModule): the host re-ships every node and
// leaf point resident on the module in a metered round labeled
// "fault/recover/module=N", returning the round's exact metered cost.
// Implementations must be safe to call from a module goroutine mid-round
// (reads of structural state only) and to call concurrently for different
// modules, and must report cost from their own rounds (e.g. Round.Metered)
// rather than by bracketing Machine.Stats, which would absorb concurrent
// metering by the interrupted round's surviving modules.
type Rebuilder interface {
	RecoverModule(mod int) (nodes, points int64, cost pim.Stats)
}

// SupervisorConfig parameterizes the recovery protocol. The zero value is
// usable.
type SupervisorConfig struct {
	// MaxRetries is how many times one module program may be retried within
	// a single round before the supervisor gives up and the fault escalates
	// as a typed panic. Default 4.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt, capped at MaxBackoff. Defaults 200µs / 10ms. Backoff is wall
	// time only and never metered.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OnEvent, when non-nil, observes every recovery event (from the
	// faulting module's goroutine; keep it cheap and do not submit machine
	// work from it).
	OnEvent func(Event)
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 200 * time.Microsecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 10 * time.Millisecond
	}
	return c
}

// Event records one handled fault.
type Event struct {
	Round   int64  `json:"round"`
	Module  int    `json:"module"`
	Kind    string `json:"kind"`
	Attempt int    `json:"attempt"`
	// Recovered is false when the supervisor gave up (retries exhausted).
	Recovered bool `json:"recovered"`
	// RebuiltNodes/RebuiltPoints count what the rebuild re-shipped (zero
	// for stalls, which lose no state).
	RebuiltNodes  int64 `json:"rebuilt_nodes,omitempty"`
	RebuiltPoints int64 `json:"rebuilt_points,omitempty"`
	// Cost is the rebuild round's exact metered contribution to the
	// machine (Round.Metered).
	Cost pim.Stats `json:"cost"`
	// Backoff is the wall-clock delay applied before the retry.
	Backoff time.Duration `json:"backoff_ns"`
}

// Stats aggregates a supervisor's lifetime counters.
type Stats struct {
	Crashes    int64 `json:"crashes"`
	Stalls     int64 `json:"stalls"`
	Recoveries int64 `json:"recoveries"`
	GaveUp     int64 `json:"gave_up"`
	// RebuiltNodes/RebuiltPoints total what recovery re-shipped.
	RebuiltNodes  int64 `json:"rebuilt_nodes"`
	RebuiltPoints int64 `json:"rebuilt_points"`
	// RecoveryCost is the summed pim.Stats delta of every rebuild — the
	// metered price of fault tolerance.
	RecoveryCost pim.Stats `json:"recovery_cost"`

	// Process-level recovery (the persist layer's story, one level above
	// module rebuilds): how many times this process was restored from
	// snapshot + WAL, what replay re-applied, and what it cost. Populated
	// by RecordProcessRecovery at startup.
	ProcessRecoveries int64     `json:"process_recoveries"`
	ReplayedRecords   int64     `json:"replayed_records"`
	ReplayedItems     int64     `json:"replayed_items"`
	ReplayCost        pim.Stats `json:"replay_cost"`

	// Peer rebuild (the replication layer's story, one level above the
	// durability layer): how many convergence runs pulled this shard's
	// cells from replica peers, what arrived over the wire, the exact
	// metered cost of the restore rounds (labeled fault/rebuild/cell=N),
	// and the wall time spent converging. Populated by RecordPeerRebuild.
	PeerRebuilds  int64         `json:"peer_rebuilds"`
	RebuiltCells  int64         `json:"rebuilt_cells"`
	PulledItems   int64         `json:"pulled_items"`
	RebuildCost   pim.Stats     `json:"rebuild_cost"`
	RebuildTimeNS time.Duration `json:"rebuild_time_ns"`

	// Online rebalance (the elasticity layer's story, beside the fault
	// rungs): how many migration adopts this shard applied for the
	// router-driven rebalancer, what they carried, their exact metered cost
	// (rounds labeled shard/migrate/cell=N), and the wall time spent
	// applying. Populated by RecordMigration.
	MigrateAdopts int64         `json:"migrate_adopts"`
	MigratedItems int64         `json:"migrated_items"`
	MigrateCost   pim.Stats     `json:"migrate_cost"`
	MigrateTimeNS time.Duration `json:"migrate_time_ns"`
}

// Supervisor implements detect → rebuild → retry on top of the machine's
// fault containment. Register it with Attach; wrap operations whose faults
// should surface as errors (not panics) with Do.
type Supervisor struct {
	mach *pim.Machine
	reb  Rebuilder
	cfg  SupervisorConfig

	mu     sync.Mutex
	stats  Stats
	events []Event
}

// NewSupervisor creates a supervisor for mach that rebuilds shards through
// reb. Call Attach to start handling faults.
func NewSupervisor(cfg SupervisorConfig, mach *pim.Machine, reb Rebuilder) *Supervisor {
	return &Supervisor{mach: mach, reb: reb, cfg: cfg.withDefaults()}
}

// Attach registers the supervisor as the machine's recovery handler.
func (s *Supervisor) Attach() { s.mach.SetRecoveryHandler(s) }

// Detach deregisters the supervisor.
func (s *Supervisor) Detach() { s.mach.SetRecoveryHandler(nil) }

// HandleModuleFault implements pim.RecoveryHandler. Crashes rebuild the
// module's shard (metered); stalls only back off. Returns true to retry
// the faulted module program.
func (s *Supervisor) HandleModuleFault(f *pim.ModuleFault) bool {
	ev := Event{Round: f.Round, Module: f.Module, Kind: f.Kind.String(), Attempt: f.Attempt}
	if f.Attempt >= s.cfg.MaxRetries {
		s.record(f, ev)
		return false
	}
	ev.Recovered = true

	ev.Backoff = s.cfg.BaseBackoff << uint(f.Attempt)
	if ev.Backoff > s.cfg.MaxBackoff {
		ev.Backoff = s.cfg.MaxBackoff
	}
	time.Sleep(ev.Backoff)

	if f.Kind == pim.FaultCrash && s.reb != nil {
		ev.RebuiltNodes, ev.RebuiltPoints, ev.Cost = s.reb.RecoverModule(f.Module)
	}
	s.record(f, ev)
	return true
}

func (s *Supervisor) record(f *pim.ModuleFault, ev Event) {
	s.mu.Lock()
	switch f.Kind {
	case pim.FaultCrash:
		s.stats.Crashes++
	case pim.FaultStall:
		s.stats.Stalls++
	}
	if ev.Recovered {
		s.stats.Recoveries++
		s.stats.RebuiltNodes += ev.RebuiltNodes
		s.stats.RebuiltPoints += ev.RebuiltPoints
		s.stats.RecoveryCost = s.stats.RecoveryCost.Add(ev.Cost)
	} else {
		s.stats.GaveUp++
	}
	s.events = append(s.events, ev)
	s.mu.Unlock()
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
}

// RecordProcessRecovery folds a completed process-level recovery (a
// persist.Open that restored state from snapshot + write-ahead log) into the
// supervisor's stats, completing the fault story across both levels: module
// crashes are rebuilt live in Θ(n/P), process crashes are rebuilt at startup
// from the durability layer, and both report their exact metered cost here.
// The arguments mirror persist.RecoveryStats (records/items replayed and the
// machine-metered replay cost); fault does not import persist so either can
// be used without the other.
func (s *Supervisor) RecordProcessRecovery(records, items int64, cost pim.Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.ProcessRecoveries++
	s.stats.ReplayedRecords += records
	s.stats.ReplayedItems += items
	s.stats.ReplayCost = s.stats.ReplayCost.Add(cost)
}

// RecordPeerRebuild folds a completed peer-rebuild convergence run (a
// replicated shard pulling its cells' contents from healthy replicas) into
// the supervisor's stats — the third rung of the fault story: module
// crashes rebuild live from host state, process crashes replay the local
// durability layer, and a lost data dir streams back from the cell's peer
// replicas. cells and items are what the run pulled over the wire, cost is
// the exact metered price of the restore rounds (each labeled
// fault/rebuild/cell=N), took the run's wall time. fault does not import
// serve; the server wires serve.RebuildConfig.OnRebuilt here.
func (s *Supervisor) RecordPeerRebuild(cells, items int64, cost pim.Stats, took time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.PeerRebuilds++
	s.stats.RebuiltCells += cells
	s.stats.PulledItems += items
	s.stats.RebuildCost = s.stats.RebuildCost.Add(cost)
	s.stats.RebuildTimeNS += took
}

// RecordMigration folds one applied migration adopt (the shard accepting a
// staged cell region from the router's online rebalancer, or purging one
// it no longer hosts) into the supervisor's stats. items is the staged cut
// size the adopt carried, cost the exact metered price of the apply round
// (labeled shard/migrate/cell=N), took its wall time. fault does not
// import serve; the server wires the shard listener's migration observer
// here.
func (s *Supervisor) RecordMigration(items int64, cost pim.Stats, took time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.MigrateAdopts++
	s.stats.MigratedItems += items
	s.stats.MigrateCost = s.stats.MigrateCost.Add(cost)
	s.stats.MigrateTimeNS += took
}

// Stats returns the supervisor's aggregate counters.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Events returns a copy of the recovery event log, in handling order.
func (s *Supervisor) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Do runs op with fault containment: a typed fault panic (an escalated
// *pim.ModuleFault or *pim.RoundTimeout — recovery exhausted, a real module
// panic, or a persistent send failure) is returned as an error instead of
// unwinding further. Other panics propagate unchanged. Note that an
// operation aborted mid-flight may leave its round unfinished, so a
// tracer's totals can undercount the machine meters after a Do error.
func (s *Supervisor) Do(op func() error) (err error) {
	defer func() {
		switch p := recover().(type) {
		case nil:
		case *pim.ModuleFault:
			err = p
		case *pim.RoundTimeout:
			err = p
		default:
			panic(p)
		}
	}()
	return op()
}
