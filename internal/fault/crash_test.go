package fault_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/fault"
	"pimkd/internal/geom"
	"pimkd/internal/persist"
	"pimkd/internal/pim"
	"pimkd/internal/serve"
	"pimkd/internal/trace"
	"pimkd/internal/workload"
)

// TestCrashRecoveryMidCommit is the process-level recovery story: a serving
// pipeline acknowledges a series of durable write batches and then dies
// mid-append of the next one (its WAL frame is half-written, exactly what a
// power cut during a commit leaves behind). persist.Open must restore every
// acknowledged update, drop the torn record, meter the replay under the
// trace label "persist/replay", and produce a tree whose query answers are
// identical to a run that never crashed.
func TestCrashRecoveryMidCommit(t *testing.T) {
	const (
		dim      = 2
		p        = 8
		initialN = 500
	)
	dir := t.TempDir()
	treeCfg := core.Config{Dim: dim, Seed: 11, LeafSize: 8}

	st, tree, _, err := persist.Open(dir, persist.Options{
		Machine: pim.NewMachine(p, 1<<20),
		Tree:    treeCfg,
		Fsync:   true,
	})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	initial := makeItems(workload.Uniform(initialN, dim, 13), 0)
	tree.Build(initial)
	if err := st.Checkpoint(tree); err != nil {
		t.Fatalf("initial checkpoint: %v", err)
	}

	svc := serve.New(serve.Config{
		MaxBatch:  32,
		MaxLinger: 200 * time.Microsecond,
		Persist:   st,
		// Keep the checkpoint taken above authoritative: recovery must
		// replay the WAL tail, not just reload a newer snapshot.
		CheckpointEvery:    -1,
		CheckpointInterval: -1,
	}, tree)

	// Acknowledged history: 4 insert waves of 25 and one delete wave of 15,
	// each wave fully acknowledged before the next begins.
	inserts := makeItems(workload.Uniform(100, dim, 77), 10_000)
	for wave := 0; wave < 4; wave++ {
		batch := inserts[wave*25 : (wave+1)*25]
		var wg sync.WaitGroup
		for _, it := range batch {
			wg.Add(1)
			go func(it core.Item) {
				defer wg.Done()
				if _, err := svc.Insert(context.Background(), it); err != nil {
					t.Errorf("insert %d: %v", it.ID, err)
				}
			}(it)
		}
		wg.Wait()
	}
	deletes := initial[100:115]
	{
		var wg sync.WaitGroup
		for _, it := range deletes {
			wg.Add(1)
			go func(it core.Item) {
				defer wg.Done()
				if _, err := svc.Delete(context.Background(), it); err != nil {
					t.Errorf("delete %d: %v", it.ID, err)
				}
			}(it)
		}
		wg.Wait()
	}
	ackedLSN := st.LSN()
	if ackedLSN == 0 {
		t.Fatal("no WAL records were appended")
	}

	// Crash: the process dies mid-append of the NEXT batch. The service is
	// abandoned (never Closed — its executor simply stops receiving work)
	// and the half-written frame lands directly in the active segment, the
	// exact on-disk state a kill -9 during LogBatch leaves.
	tornBatch := makeItems(workload.Uniform(10, dim, 99), 50_000)
	frame := persist.EncodeWALRecord(persist.WALRecord{
		LSN: ackedLSN + 1, Op: persist.OpInsert, Items: tornBatch,
	}, dim)
	seg := activeSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recovery on a brand-new machine, with a tracer attached so replay
	// attribution is observable.
	mach2 := pim.NewMachine(p, 1<<20)
	tracer := trace.New(4096)
	mach2.SetObserver(tracer)
	st2, tree2, rec, err := persist.Open(dir, persist.Options{Machine: mach2})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer st2.Close()
	mach2.SetObserver(nil)

	// 1. Zero lost acknowledged updates; the torn record cleanly absent.
	if !rec.Recovered || !rec.TornTail {
		t.Fatalf("recovery stats: %+v", rec)
	}
	if rec.TornBytes != int64(len(frame)/2) {
		t.Fatalf("torn bytes %d, want %d", rec.TornBytes, len(frame)/2)
	}
	if got := uint64(rec.ReplayRecords) + rec.SnapshotLSN; got != ackedLSN {
		t.Fatalf("replayed through lsn %d, want %d", got, ackedLSN)
	}
	wantIDs := idSet(initial, inserts, deletes)
	if gotIDs := sortedIDs(tree2.Items()); !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("recovered id set has %d ids, want %d", len(gotIDs), len(wantIDs))
	}
	for _, it := range tornBatch {
		for _, id := range sortedIDs(tree2.Items()) {
			if id == it.ID {
				t.Fatalf("torn (unacknowledged) item %d present after recovery", it.ID)
			}
		}
	}

	// 2. Query answers identical to a never-crashed run: same initial
	// build, same acknowledged batches, no crash, no recovery.
	oracle := core.New(treeCfg, pim.NewMachine(p, 1<<20))
	oracle.Build(initial)
	for wave := 0; wave < 4; wave++ {
		oracle.BatchInsert(inserts[wave*25 : (wave+1)*25])
	}
	oracle.BatchDelete(deletes)
	qs := workload.Uniform(200, dim, 31)
	wantKNN := oracle.KNN(qs, 8)
	gotKNN := tree2.KNN(qs, 8)
	if !reflect.DeepEqual(gotKNN, wantKNN) {
		t.Fatal("kNN answers differ between recovered and never-crashed trees")
	}
	wantRange := sortedIDs(flatten(oracle.RangeReport([]geom.Box{geom.NewBox(geom.Point{0.2, 0.2}, geom.Point{0.6, 0.6})})))
	gotRange := sortedIDs(flatten(tree2.RangeReport([]geom.Box{geom.NewBox(geom.Point{0.2, 0.2}, geom.Point{0.6, 0.6})})))
	if !reflect.DeepEqual(gotRange, wantRange) {
		t.Fatal("range answers differ between recovered and never-crashed trees")
	}

	// 3. Replay is metered and attributed: the machine-level cost appears
	// in RecoveryStats, and the tracer saw rounds labeled persist/replay
	// and persist/load.
	if rec.ReplayCost.Communication == 0 || rec.ReplayCost.Rounds == 0 {
		t.Fatalf("replay cost not metered: %+v", rec.ReplayCost)
	}
	replay := trace.SumByPrefix(tracer.Records(), "persist/replay")
	if replay.Records == 0 || replay.Comm == 0 {
		t.Fatalf("no persist/replay rounds in trace: %+v", replay)
	}
	if replay.Comm != rec.ReplayCost.Communication {
		t.Fatalf("trace attributes %d replay comm words, stats say %d",
			replay.Comm, rec.ReplayCost.Communication)
	}
	load := trace.SumByPrefix(tracer.Records(), "persist/load")
	if load.Records == 0 {
		t.Fatal("no persist/load rounds in trace")
	}

	// 4. The supervisor's two-level fault story: fold the process recovery
	// into the same stats module rebuilds use.
	sup := fault.NewSupervisor(fault.SupervisorConfig{}, mach2, tree2)
	sup.RecordProcessRecovery(int64(rec.ReplayRecords), int64(rec.ReplayItems), rec.ReplayCost)
	fs := sup.Stats()
	if fs.ProcessRecoveries != 1 || fs.ReplayedRecords != int64(rec.ReplayRecords) ||
		fs.ReplayCost.Communication != rec.ReplayCost.Communication {
		t.Fatalf("supervisor process-recovery stats: %+v", fs)
	}

	// 5. The recovered store accepts new durable writes at the truncated
	// position.
	if lsn, err := st2.LogBatch(persist.OpInsert, tornBatch); err != nil || lsn != ackedLSN+1 {
		t.Fatalf("post-recovery append: lsn=%d err=%v", lsn, err)
	}
	tree2.BatchInsert(tornBatch)
	if err := tree2.CheckInvariants(); err != nil {
		t.Fatalf("recovered tree invariants after new writes: %v", err)
	}
}

func makeItems(pts []geom.Point, idBase int32) []core.Item {
	items := make([]core.Item, len(pts))
	for i, pt := range pts {
		items[i] = core.Item{P: pt, ID: idBase + int32(i)}
	}
	return items
}

func sortedIDs(items []core.Item) []int32 {
	ids := make([]int32, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func flatten(res [][]core.Item) []core.Item {
	var out []core.Item
	for _, r := range res {
		out = append(out, r...)
	}
	return out
}

func idSet(initial, inserts, deletes []core.Item) []int32 {
	present := map[int32]bool{}
	for _, it := range initial {
		present[it.ID] = true
	}
	for _, it := range inserts {
		present[it.ID] = true
	}
	for _, it := range deletes {
		delete(present, it.ID)
	}
	ids := make([]int32, 0, len(present))
	for id := range present {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// activeSegment returns the highest-numbered WAL segment in dir.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no WAL segments in %s (err=%v)", dir, err)
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}
