// Package fault is the deterministic fault-injection and recovery layer
// for the PIM machine.
//
// The paper's PIM model assumes P modules that never fail; a production
// deployment must tolerate module crashes, stalled rounds, and transient
// send failures. This package supplies both halves of that story:
//
//   - Plan is a seeded, fully deterministic fault schedule. Every decision
//     is a pure hash of (seed, round, module, attempt), so the same plan
//     produces the identical fault schedule — and, because injected faults
//     never meter wall time, identical pim.Stats — on every run. Plans mix
//     rate-based chaos (CrashProb et al.) with explicitly targeted events
//     (Crashes/Stalls/SendFails) for surgical tests.
//
//   - Supervisor is the recovery protocol: detect → rebuild → retry. It
//     registers as the machine's pim.RecoveryHandler; when a module crash
//     is contained mid-round, it rebuilds that module's shard from the
//     host-side authoritative state (through a Rebuilder, typically
//     core.Tree.RecoverModule) with capped exponential backoff, metering
//     the rebuild through the normal pim counters so recovery cost is a
//     measured quantity, then lets the machine retry the failed module
//     program in place. Stalls retry without a rebuild (nothing was lost).
//
// Rounds the Supervisor triggers are labeled "fault/recover/..." by the
// rebuilder, so the trace layer attributes recovery cost like any other
// round work.
package fault

import (
	"time"

	"pimkd/internal/pim"
)

// Target pins an explicit fault to one (round, module) site. Rounds are
// numbered in pim.Machine.RoundSeq order.
type Target struct {
	Round  int64
	Module int
}

// Plan is a seeded, deterministic fault schedule. The zero value injects
// nothing. Probabilities are evaluated per (round, module) site; explicit
// Targets fire regardless of the rates.
type Plan struct {
	// Seed drives every probabilistic decision. Two injectors built from
	// equal plans behave identically.
	Seed int64

	// CrashProb is the per-(round, module) probability of a module crash.
	CrashProb float64
	// StallProb is the per-(round, module) probability of a stall of
	// StallDelay (default 1ms when a stall fires with zero delay).
	StallProb  float64
	StallDelay time.Duration
	// SendFailProb is the probability that the first try of a Transfer
	// touching a module in a round fails (the retry always succeeds, so a
	// rate-based plan doubles some transfers' metered words but never
	// escalates a send to a module fault).
	SendFailProb float64

	// MaxRefires bounds how many consecutive attempts of the same (round,
	// module) site re-fire a crash or stall, so recovery always converges.
	// Default 1: the site faults once and the first retry succeeds.
	MaxRefires int

	// FirstRound/LastRound bound the active window (inclusive); zero means
	// unbounded on that side. Use Machine.RoundSeq() to anchor the window
	// after setup so construction is never faulted.
	FirstRound, LastRound int64

	// Explicit events, applied on attempt 0 of their site in addition to
	// the rates.
	Crashes   []Target
	Stalls    []Target
	SendFails []Target
}

// Injector compiles the plan into a pim.Injector. The injector is
// stateless and safe for concurrent use.
func (p Plan) Injector() *Injector {
	in := &Injector{plan: p}
	in.crashes = targetSet(p.Crashes)
	in.stalls = targetSet(p.Stalls)
	in.sendFails = targetSet(p.SendFails)
	if in.plan.MaxRefires <= 0 {
		in.plan.MaxRefires = 1
	}
	if in.plan.StallDelay <= 0 {
		in.plan.StallDelay = time.Millisecond
	}
	return in
}

func targetSet(ts []Target) map[Target]bool {
	if len(ts) == 0 {
		return nil
	}
	m := make(map[Target]bool, len(ts))
	for _, t := range ts {
		m[t] = true
	}
	return m
}

// Injector is the compiled, deterministic pim.Injector form of a Plan.
type Injector struct {
	plan      Plan
	crashes   map[Target]bool
	stalls    map[Target]bool
	sendFails map[Target]bool
}

// Distinct salts keep the crash, stall, and send coin streams independent.
const (
	saltCrash uint64 = 0x6372617368c0ffee
	saltStall uint64 = 0x7374616c6c21a5e1
	saltSend  uint64 = 0x73656e64fa11ed77
)

// coin returns a deterministic uniform [0,1) draw for one decision site.
func coin(seed int64, salt uint64, round int64, mod, attempt int) float64 {
	h := pim.Mix64(uint64(seed) ^ salt)
	h = pim.Mix64(h ^ uint64(round))
	h = pim.Mix64(h ^ uint64(mod)<<32 ^ uint64(attempt))
	return float64(h>>11) / float64(1<<53)
}

// active reports whether round falls inside the plan's window.
func (in *Injector) active(round int64) bool {
	if in.plan.FirstRound > 0 && round < in.plan.FirstRound {
		return false
	}
	if in.plan.LastRound > 0 && round > in.plan.LastRound {
		return false
	}
	return true
}

// ModuleAction implements pim.Injector.
func (in *Injector) ModuleAction(round int64, mod, attempt int) pim.Action {
	if !in.active(round) || attempt >= in.plan.MaxRefires {
		return pim.Action{}
	}
	site := Target{Round: round, Module: mod}
	if in.crashes[site] || (in.plan.CrashProb > 0 && coin(in.plan.Seed, saltCrash, round, mod, attempt) < in.plan.CrashProb) {
		return pim.Action{Crash: true}
	}
	if in.stalls[site] || (in.plan.StallProb > 0 && coin(in.plan.Seed, saltStall, round, mod, attempt) < in.plan.StallProb) {
		return pim.Action{Stall: in.plan.StallDelay}
	}
	return pim.Action{}
}

// SendOK implements pim.Injector: only a transfer's first try can fail, so
// every injected send failure is transient by construction.
func (in *Injector) SendOK(round int64, mod, attempt int) bool {
	if attempt > 0 || !in.active(round) {
		return true
	}
	if in.sendFails[Target{Round: round, Module: mod}] {
		return false
	}
	return in.plan.SendFailProb <= 0 || coin(in.plan.Seed, saltSend, round, mod, 0) >= in.plan.SendFailProb
}
