package fault

import (
	"errors"
	"testing"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/pim"
	"pimkd/internal/workload"
)

func buildTree(t *testing.T, n, p int, seed int64) (*core.Tree, *pim.Machine) {
	t.Helper()
	mach := pim.NewMachine(p, 1<<20)
	tree := core.New(core.Config{Dim: 2, Seed: seed}, mach)
	pts := workload.Uniform(n, 2, seed)
	items := make([]core.Item, n)
	for i, pt := range pts {
		items[i] = core.Item{P: pt, ID: int32(i)}
	}
	tree.Build(items)
	return tree, mach
}

func TestPlanDeterministicSchedule(t *testing.T) {
	plan := Plan{Seed: 42, CrashProb: 0.05, StallProb: 0.1, SendFailProb: 0.2, MaxRefires: 2}
	a, b := plan.Injector(), plan.Injector()
	for round := int64(1); round <= 50; round++ {
		for mod := 0; mod < 8; mod++ {
			for attempt := 0; attempt < 3; attempt++ {
				if a.ModuleAction(round, mod, attempt) != b.ModuleAction(round, mod, attempt) {
					t.Fatalf("ModuleAction diverged at (%d,%d,%d)", round, mod, attempt)
				}
				if a.SendOK(round, mod, attempt) != b.SendOK(round, mod, attempt) {
					t.Fatalf("SendOK diverged at (%d,%d,%d)", round, mod, attempt)
				}
			}
		}
	}
	// The rates actually fire somewhere in the sweep.
	var crashes, stalls, sendFails int
	for round := int64(1); round <= 50; round++ {
		for mod := 0; mod < 8; mod++ {
			act := a.ModuleAction(round, mod, 0)
			if act.Crash {
				crashes++
			}
			if act.Stall > 0 {
				stalls++
			}
			if !a.SendOK(round, mod, 0) {
				sendFails++
			}
		}
	}
	if crashes == 0 || stalls == 0 || sendFails == 0 {
		t.Fatalf("rates never fired: crashes=%d stalls=%d sendFails=%d", crashes, stalls, sendFails)
	}
	// MaxRefires bounds refires; beyond it the site is clean.
	if act := a.ModuleAction(1, 0, 2); act.Crash || act.Stall > 0 {
		t.Fatalf("attempt >= MaxRefires still faulted: %+v", act)
	}
	// A different seed produces a different schedule.
	other := Plan{Seed: 43, CrashProb: 0.05, StallProb: 0.1, SendFailProb: 0.2, MaxRefires: 2}.Injector()
	diverged := false
	for round := int64(1); round <= 50 && !diverged; round++ {
		for mod := 0; mod < 8; mod++ {
			if a.ModuleAction(round, mod, 0) != other.ModuleAction(round, mod, 0) {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestPlanWindowAndTargets(t *testing.T) {
	in := Plan{
		Seed:       1,
		FirstRound: 10,
		LastRound:  20,
		Crashes:    []Target{{Round: 15, Module: 3}},
		Stalls:     []Target{{Round: 16, Module: 1}},
		SendFails:  []Target{{Round: 17, Module: 0}},
	}.Injector()
	if !in.ModuleAction(15, 3, 0).Crash {
		t.Fatal("explicit crash target did not fire")
	}
	if in.ModuleAction(15, 3, 1).Crash {
		t.Fatal("crash re-fired beyond MaxRefires")
	}
	if in.ModuleAction(16, 1, 0).Stall <= 0 {
		t.Fatal("explicit stall target did not fire")
	}
	if in.SendOK(17, 0, 0) {
		t.Fatal("explicit send-fail target did not fire")
	}
	if !in.SendOK(17, 0, 1) {
		t.Fatal("send retry must succeed")
	}
	// Outside the window nothing fires, even explicit targets.
	out := Plan{
		Seed:       1,
		FirstRound: 10,
		LastRound:  20,
		Crashes:    []Target{{Round: 5, Module: 3}},
	}.Injector()
	if out.ModuleAction(5, 3, 0).Crash {
		t.Fatal("target outside window fired")
	}
}

// TestSupervisorRecoversCrashEndToEnd is the tentpole integration test:
// build a tree, install a plan that crashes a module during the query
// phase, attach a supervisor rebuilding through core.Tree.RecoverModule,
// and check the faulted run returns byte-identical results to a
// fault-free run, with the recovery metered and recorded.
func TestSupervisorRecoversCrashEndToEnd(t *testing.T) {
	const n, p, k = 2048, 16, 4
	tree, mach := buildTree(t, n, p, 5)
	ref, _ := buildTree(t, n, p, 5)
	qs := workload.Hotspot(200, 2, 1e-3, 9)
	want := ref.KNN(qs, k)

	base := mach.RoundSeq()
	// A stall shorter than the round deadline is just a sleep; to exercise
	// the supervisor's stall path the injected delay must blow the deadline,
	// which escalates deterministically (without sleeping).
	mach.SetRoundDeadline(250 * time.Millisecond)
	defer mach.SetRoundDeadline(0)
	plan := Plan{
		Seed:       77,
		Crashes:    []Target{{Round: base + 1, Module: 2}},
		Stalls:     []Target{{Round: base + 1, Module: 4}},
		StallDelay: time.Hour,
	}
	mach.SetInjector(plan.Injector())
	defer mach.SetInjector(nil)

	sup := NewSupervisor(SupervisorConfig{BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}, mach, tree)
	sup.Attach()
	defer sup.Detach()

	pre := mach.Stats()
	res := tree.KNN(qs, k)
	cost := mach.Stats().Sub(pre)

	if len(res) != len(want) {
		t.Fatalf("result count %d != %d", len(res), len(want))
	}
	for i := range res {
		if len(res[i]) != len(want[i]) {
			t.Fatalf("query %d: %d vs %d results", i, len(res[i]), len(want[i]))
		}
		for j := range res[i] {
			if res[i][j].ID != want[i][j].ID || res[i][j].Dist2 != want[i][j].Dist2 {
				t.Fatalf("query %d result %d differs: %+v vs %+v", i, j, res[i][j], want[i][j])
			}
		}
	}

	st := sup.Stats()
	if st.Crashes == 0 || st.Stalls == 0 {
		t.Fatalf("supervisor saw crashes=%d stalls=%d, want both > 0", st.Crashes, st.Stalls)
	}
	if st.Recoveries != st.Crashes+st.Stalls {
		t.Fatalf("recoveries=%d, want %d (all faults recovered)", st.Recoveries, st.Crashes+st.Stalls)
	}
	if st.GaveUp != 0 {
		t.Fatalf("gaveUp=%d, want 0", st.GaveUp)
	}
	if st.RebuiltNodes == 0 || st.RebuiltPoints == 0 {
		t.Fatalf("rebuild shipped nothing: %+v", st)
	}
	if st.RecoveryCost.Communication == 0 || st.RecoveryCost.Rounds == 0 {
		t.Fatalf("recovery cost not metered: %+v", st.RecoveryCost)
	}
	// The faulted run's total cost includes the recovery cost on top of
	// normal query cost.
	if cost.Communication <= st.RecoveryCost.Communication {
		t.Fatalf("run comm %d not greater than recovery comm %d", cost.Communication, st.RecoveryCost.Communication)
	}
	evs := sup.Events()
	if len(evs) != int(st.Recoveries) {
		t.Fatalf("events=%d, want %d", len(evs), st.Recoveries)
	}
	for _, ev := range evs {
		if !ev.Recovered {
			t.Fatalf("unrecovered event: %+v", ev)
		}
		if ev.Kind == pim.FaultCrash.String() && ev.Cost.Communication == 0 {
			t.Fatalf("crash event with unmetered rebuild: %+v", ev)
		}
	}
}

// TestSupervisorDeterministicRecovery: two identical faulted runs produce
// identical machine stats and identical supervisor accounting.
func TestSupervisorDeterministicRecovery(t *testing.T) {
	run := func() (pim.Stats, Stats) {
		tree, mach := buildTree(t, 1024, 8, 3)
		base := mach.RoundSeq()
		plan := Plan{Seed: 11, Crashes: []Target{{Round: base + 1, Module: 1}}}
		mach.SetInjector(plan.Injector())
		sup := NewSupervisor(SupervisorConfig{BaseBackoff: time.Microsecond}, mach, tree)
		sup.Attach()
		qs := workload.Uniform(64, 2, 13)
		pre := mach.Stats()
		tree.KNN(qs, 3)
		return mach.Stats().Sub(pre), sup.Stats()
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 {
		t.Fatalf("machine stats diverged across identical faulted runs:\n%+v\n%+v", s1, s2)
	}
	if f1 != f2 {
		t.Fatalf("supervisor stats diverged:\n%+v\n%+v", f1, f2)
	}
}

// TestSupervisorGivesUp: when the plan re-fires a crash more times than
// the supervisor will retry, the fault escalates and Do returns it as a
// typed error instead of panicking.
func TestSupervisorGivesUp(t *testing.T) {
	tree, mach := buildTree(t, 512, 8, 1)
	base := mach.RoundSeq()
	plan := Plan{
		Seed:       2,
		Crashes:    []Target{{Round: base + 1, Module: 0}},
		MaxRefires: 10, // out-refires the supervisor's 2 retries
	}
	mach.SetInjector(plan.Injector())
	defer mach.SetInjector(nil)
	sup := NewSupervisor(SupervisorConfig{MaxRetries: 2, BaseBackoff: time.Microsecond}, mach, tree)
	sup.Attach()
	defer sup.Detach()

	qs := workload.Uniform(32, 2, 4)
	err := sup.Do(func() error {
		tree.KNN(qs, 2)
		return nil
	})
	var mf *pim.ModuleFault
	if !errors.As(err, &mf) {
		t.Fatalf("Do returned %v, want *pim.ModuleFault", err)
	}
	if mf.Kind != pim.FaultCrash || mf.Module != 0 || !mf.Injected {
		t.Fatalf("wrong escalated fault: %+v", mf)
	}
	if mf.Attempt != 2 {
		t.Fatalf("escalated at attempt %d, want 2 (MaxRetries)", mf.Attempt)
	}
	st := sup.Stats()
	if st.GaveUp != 1 {
		t.Fatalf("gaveUp=%d, want 1", st.GaveUp)
	}
	if st.Recoveries != 2 {
		t.Fatalf("recoveries=%d, want 2 before giving up", st.Recoveries)
	}
}

// TestSupervisorDoPassesThroughErrors: ordinary errors and nil results
// flow through Do untouched.
func TestSupervisorDoPassesThroughErrors(t *testing.T) {
	_, mach := buildTree(t, 128, 4, 1)
	sup := NewSupervisor(SupervisorConfig{}, mach, nil)
	if err := sup.Do(func() error { return nil }); err != nil {
		t.Fatalf("Do(nil op) = %v", err)
	}
	want := errors.New("boom")
	if err := sup.Do(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Do passthrough = %v, want %v", err, want)
	}
}
