package fault

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/pim"
	"pimkd/internal/serve"
	"pimkd/internal/trace"
	"pimkd/internal/workload"
)

// TestChaosSoak drives the full serving stack — concurrent inserts,
// deletes, and kNN through serve.Service — under a seeded chaos plan with
// the supervisor recovering every fault, and then checks that nothing was
// lost: the surviving ID set is exactly built ∪ inserted − deleted, the
// tree invariants hold, and the per-round trace still sums exactly to the
// machine's meters (no round went missing or was double-counted during
// recovery). Run under -race; skipped in -short (the CI PR lane); the
// weekly chaos-soak lane runs it long.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	const (
		dim, p    = 2, 32
		nBuilt    = 4096
		inserters = 4
		insEach   = 150
		deleters  = 2
		delEach   = 150
		queriers  = 3
		qEach     = 200
	)

	mach := pim.NewMachine(p, 1<<20)
	// Attach the tracer before Build so conservation can be checked against
	// the machine's lifetime totals, recovery rounds included.
	tracer := trace.New(trace.DefaultCapacity)
	mach.SetObserver(tracer)
	defer mach.SetObserver(nil)

	tree := core.New(core.Config{Dim: dim, Seed: 401}, mach)
	pts := workload.Uniform(nBuilt, dim, 403)
	items := make([]core.Item, nBuilt)
	for i, pt := range pts {
		items[i] = core.Item{P: pt, ID: int32(i)}
	}
	tree.Build(items)

	// Arm chaos after the build. The plan is fully recoverable by
	// construction: MaxRefires 1 (every site faults at most once, so the
	// supervisor's retry always succeeds), stalls stay under the (absent)
	// deadline and only sleep, and injected send failures are transient.
	// That means no operation is ever abandoned mid-round — the property
	// that keeps the trace conservation check exact.
	plan := Plan{
		Seed:         409,
		CrashProb:    0.002,
		StallProb:    0.004,
		StallDelay:   20 * time.Microsecond,
		SendFailProb: 0.01,
		FirstRound:   mach.RoundSeq() + 1,
	}
	mach.SetInjector(plan.Injector())
	defer mach.SetInjector(nil)
	sup := NewSupervisor(SupervisorConfig{BaseBackoff: time.Microsecond, MaxBackoff: 50 * time.Microsecond}, mach, tree)
	sup.Attach()
	defer sup.Detach()

	svc := serve.New(serve.Config{MaxBatch: 32, MaxLinger: 200 * time.Microsecond, Seed: 419}, tree)

	// Disjoint ID territories make the expected final set computable
	// without any cross-worker coordination: inserter w owns new IDs
	// 1_000_000 + w*insEach + j; deleter w removes built IDs
	// [w*delEach, (w+1)*delEach).
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, inserters+deleters+queriers)

	insPts := make([][]geom.Point, inserters)
	for w := 0; w < inserters; w++ {
		insPts[w] = workload.Uniform(insEach, dim, 431+int64(w))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < insEach; j++ {
				id := int32(1_000_000 + w*insEach + j)
				if _, err := svc.Insert(ctx, core.Item{P: insPts[w][j], ID: id}); err != nil {
					errs <- fmt.Errorf("inserter %d op %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < deleters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < delEach; j++ {
				id := w*delEach + j
				if _, err := svc.Delete(ctx, core.Item{P: pts[id], ID: int32(id)}); err != nil {
					errs <- fmt.Errorf("deleter %d op %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < queriers; w++ {
		qs := workload.Hotspot(qEach, dim, 1e-2, 443+int64(w))
		wg.Add(1)
		go func(w int, qs []geom.Point) {
			defer wg.Done()
			for j, q := range qs {
				var err error
				if j%2 == 0 {
					_, _, err = svc.KNN(ctx, q, 3)
				} else {
					_, _, err = svc.Lookup(ctx, q)
				}
				if err != nil {
					errs <- fmt.Errorf("querier %d op %d: %w", w, j, err)
					return
				}
			}
		}(w, qs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiesce injection for the verification sweep so the bookkeeping
	// below measures the soak, not fresh chaos.
	mach.SetInjector(nil)

	// No lost updates: the surviving IDs are exactly built ∪ inserted −
	// deleted.
	want := map[int32]bool{}
	for i := deleters * delEach; i < nBuilt; i++ {
		want[int32(i)] = true
	}
	for w := 0; w < inserters; w++ {
		for j := 0; j < insEach; j++ {
			want[int32(1_000_000+w*insEach+j)] = true
		}
	}
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		lo[d], hi[d] = -1, 2
	}
	surviving := tree.RangeReport([]geom.Box{geom.NewBox(lo, hi)})[0]
	if len(surviving) != len(want) {
		t.Fatalf("tree holds %d items, want %d", len(surviving), len(want))
	}
	for _, it := range surviving {
		if !want[it.ID] {
			t.Fatalf("unexpected survivor ID %d", it.ID)
		}
		delete(want, it.ID)
	}
	if len(want) != 0 {
		t.Fatalf("%d updates lost (e.g. missing IDs %v...)", len(want), firstFew(want, 5))
	}

	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after soak: %v", err)
	}

	// Exact conservation: every round the machine metered — recovery
	// rounds included — was observed by the tracer exactly once.
	if err := tracer.Totals().CheckConservation(mach.Stats()); err != nil {
		t.Fatalf("trace conservation after soak: %v", err)
	}

	st := sup.Stats()
	if st.Crashes == 0 {
		t.Fatalf("chaos plan injected no crashes (stats %+v); raise CrashProb", st)
	}
	if st.GaveUp != 0 {
		t.Fatalf("supervisor gave up %d times under a fully recoverable plan", st.GaveUp)
	}
	if st.Recoveries != st.Crashes+st.Stalls {
		t.Fatalf("recoveries=%d, want crashes+stalls=%d", st.Recoveries, st.Crashes+st.Stalls)
	}
	rec := trace.SumByPrefix(tracer.Records(), "fault/")
	if rec.Comm == 0 || rec.Comm != st.RecoveryCost.Communication {
		t.Fatalf("trace fault/ comm %d != supervisor recovery comm %d", rec.Comm, st.RecoveryCost.Communication)
	}
	t.Logf("soak: %d crashes, %d stalls, %d recoveries, %d send retries, recovery comm %d words (%d trace rounds)",
		st.Crashes, st.Stalls, st.Recoveries, mach.SendRetries(), st.RecoveryCost.Communication, rec.Rounds)
}

func firstFew(m map[int32]bool, k int) []int32 {
	out := make([]int32, 0, k)
	for id := range m {
		out = append(out, id)
		if len(out) == k {
			break
		}
	}
	return out
}
