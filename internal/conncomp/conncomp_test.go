package conncomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pimkd/internal/pim"
)

// refComponents is a simple union-find reference.
func refComponents(n int, edges []Edge) []int32 {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := find(e.U), find(e.V)
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = find(int32(i))
	}
	return out
}

func TestSimpleGraph(t *testing.T) {
	mach := pim.NewMachine(4, 1<<16)
	labels := Components(mach, 6, []Edge{{0, 1}, {1, 2}, {4, 5}})
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("chain not connected")
	}
	if labels[3] == labels[0] || labels[4] != labels[5] || labels[4] == labels[0] {
		t.Fatalf("labels %v", labels)
	}
	if Count(labels) != 3 {
		t.Fatalf("count %d", Count(labels))
	}
}

func TestMinLabelConvention(t *testing.T) {
	mach := pim.NewMachine(4, 1<<16)
	labels := Components(mach, 5, []Edge{{4, 3}, {3, 2}, {2, 1}, {1, 0}})
	for i, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d label %d want 0", i, l)
		}
	}
}

func TestSelfLoopsAndDuplicates(t *testing.T) {
	mach := pim.NewMachine(2, 1<<16)
	labels := Components(mach, 3, []Edge{{0, 0}, {1, 2}, {2, 1}, {1, 2}})
	if labels[1] != labels[2] || labels[0] == labels[1] {
		t.Fatalf("labels %v", labels)
	}
}

func TestRandomGraphsMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		m := rng.Intn(400)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		mach := pim.NewMachine(8, 1<<16)
		got := Components(mach, n, edges)
		want := refComponents(n, edges)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	mach := pim.NewMachine(2, 1<<16)
	labels := Components(mach, 0, nil)
	if len(labels) != 0 {
		t.Fatal("nonempty labels")
	}
	labels = Components(mach, 4, nil)
	if Count(labels) != 4 {
		t.Fatal("isolated vertices miscounted")
	}
}

func TestBigComponentBalanced(t *testing.T) {
	// A long path through hash-distributed edges: the work should spread.
	mach := pim.NewMachine(16, 1<<16)
	n := 20000
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{int32(i), int32(i + 1)}
	}
	labels := Components(mach, n, edges)
	if Count(labels) != 1 {
		t.Fatal("path not fully connected")
	}
	work, _ := mach.ModuleLoads()
	if r := pim.MaxLoadRatio(work); r > 2 {
		t.Fatalf("edge work imbalanced: %.2f", r)
	}
}
