// Package conncomp implements the parallel connected-components substrate
// used by both clustering algorithms (§6): a label-propagation /
// pointer-jumping scheme in the style of Shun-Dhulipala-Blelloch, executed
// and metered on the PIM machine. Vertices and edges are hash-distributed
// across modules, so each of the O(log n) rounds is PIM-balanced whp and
// the total communication is O(n + m) words.
package conncomp

import (
	"sync/atomic"

	"pimkd/internal/pim"
)

// Edge is an undirected graph edge between vertex indices.
type Edge struct {
	U, V int32
}

// Components labels the connected components of the n-vertex graph given by
// edges: the returned slice maps each vertex to the smallest vertex index
// in its component. Self-loops and duplicate edges are tolerated.
func Components(mach *pim.Machine, n int, edges []Edge) []int32 {
	labels := make([]int32, n)
	labelsA := make([]atomic.Int32, n)
	for i := range labelsA {
		labelsA[i].Store(int32(i))
	}
	if n == 0 {
		return labels
	}
	p := mach.P()

	for {
		changed := atomic.Bool{}
		mach.RunRound(func(r *pim.Round) {
			// Hook: every edge tries to pull both endpoints down to the
			// smaller label. Edges are hash-partitioned across modules.
			r.OnModules(func(ctx *pim.ModuleCtx) {
				m := ctx.ID()
				var work, moved int64
				for i := m; i < len(edges); i += p {
					e := edges[i]
					work++
					lu := labelsA[e.U].Load()
					lv := labelsA[e.V].Load()
					if lu == lv {
						continue
					}
					lo := lu
					hi := e.V
					if lv < lu {
						lo = lv
						hi = e.U
					}
					for {
						cur := labelsA[hi].Load()
						if cur <= lo {
							break
						}
						if labelsA[hi].CompareAndSwap(cur, lo) {
							changed.Store(true)
							moved++
							break
						}
					}
				}
				ctx.Work(work)
				ctx.Transfer(moved) // label writes cross modules
			})
		})
		if !changed.Load() {
			break
		}
		mach.RunRound(func(r *pim.Round) {
			// Jump: compress label chains one level per round.
			r.OnModules(func(ctx *pim.ModuleCtx) {
				m := ctx.ID()
				var work int64
				for v := m; v < n; v += p {
					work++
					l := labelsA[v].Load()
					ll := labelsA[l].Load()
					if ll < l {
						labelsA[v].Store(ll)
					}
				}
				ctx.Work(work)
			})
		})
	}
	// Final full compression so every vertex points at its component root.
	for v := 0; v < n; v++ {
		l := labelsA[v].Load()
		for l != labelsA[l].Load() {
			l = labelsA[l].Load()
		}
		labels[v] = l
	}
	return labels
}

// Count returns the number of distinct labels.
func Count(labels []int32) int {
	seen := map[int32]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
