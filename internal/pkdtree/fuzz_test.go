package pkdtree

import (
	"math"
	"math/rand"
	"testing"

	"pimkd/internal/geom"
)

// FuzzBatchOps drives derived insert/delete/search sequences from raw fuzz
// bytes, checking the structural invariants and membership semantics after
// every step. `go test` runs the seed corpus; `go test -fuzz=FuzzBatchOps`
// explores further.
func FuzzBatchOps(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(50))
	f.Add(int64(42), uint8(7), uint8(200))
	f.Add(int64(-9), uint8(1), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, steps, batchRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		batch := int(batchRaw)%200 + 1
		tree := New(Config{Dim: 2, Seed: seed}, nil)
		ref := map[int32]geom.Point{}
		next := int32(0)
		for s := 0; s < int(steps)%8+1; s++ {
			if rng.Intn(2) == 0 || len(ref) == 0 {
				items := make([]Item, batch)
				for i := range items {
					// Quantized coordinates provoke duplicate values.
					p := geom.Point{float64(rng.Intn(16)) / 16, float64(rng.Intn(16)) / 16}
					items[i] = Item{P: p, ID: next}
					ref[next] = p
					next++
				}
				tree.BatchInsert(items)
			} else {
				var items []Item
				for id, p := range ref {
					items = append(items, Item{P: p, ID: id})
					if len(items) >= batch/2+1 {
						break
					}
				}
				for _, it := range items {
					delete(ref, it.ID)
				}
				tree.BatchDelete(items)
			}
			if tree.Size() != len(ref) {
				t.Fatalf("size %d want %d", tree.Size(), len(ref))
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		for id, p := range ref {
			if !tree.Contains(Item{P: p, ID: id}) {
				t.Fatalf("lost item %d", id)
			}
			break // one membership probe per run keeps fuzzing fast
		}
	})
}

// FuzzKNNAgainstBrute checks exact kNN against brute force on fuzz-derived
// points, including heavy duplicates and collinear layouts.
func FuzzKNNAgainstBrute(f *testing.F) {
	f.Add(int64(5), uint8(40), uint8(3))
	f.Add(int64(77), uint8(200), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, kRaw uint8) {
		n := int(nRaw)%300 + 2
		k := int(kRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				P:  geom.Point{float64(rng.Intn(8)) / 8, float64(rng.Intn(8)) / 8},
				ID: int32(i),
			}
		}
		tree := New(Config{Dim: 2, Seed: seed}, items)
		q := geom.Point{rng.Float64(), rng.Float64()}
		got := tree.KNN(q, k)
		ds := make([]float64, n)
		for i, it := range items {
			ds[i] = geom.Dist2(q, it.P)
		}
		for i := 0; i < len(ds); i++ {
			for j := i + 1; j < len(ds); j++ {
				if ds[j] < ds[i] {
					ds[i], ds[j] = ds[j], ds[i]
				}
			}
		}
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			t.Fatalf("got %d results want %d", len(got), want)
		}
		for i := range got {
			if math.Abs(got[i].Dist2-ds[i]) > 1e-12 {
				t.Fatalf("rank %d: %g want %g", i, got[i].Dist2, ds[i])
			}
		}
	})
}
