// Package pkdtree implements the shared-memory parallel kd-tree baseline of
// Men et al. (SIGMOD'25), the "PKD-tree" row of the paper's Table 1. It is
// both a comparison baseline for the PIM-kd-tree and the reference
// implementation the correctness tests check the PIM tree against.
//
// The tree is α-balanced: for every internal node, the larger child's
// subtree size is at most (1+α) times the smaller child's. Construction
// builds multi-level treelet skeletons from samples sized to the cache
// (the PKD construction scheme), so the metered streaming transfers follow
// the O(n · log_M n) cache-complexity bound. Batch updates use
// scapegoat-style partial reconstruction: routing a batch updates exact
// subtree counters along every root-to-leaf path, and the highest node whose
// balance is violated is rebuilt from scratch.
//
// Cost metering: the Meter records node visits (the shared-memory
// communication proxy — each tree node touched is an off-chip access in the
// external-memory view the paper compares against), point-level work, and
// modeled streaming cache transfers during construction and rebuilds.
package pkdtree

import (
	"fmt"
	"math/rand"

	"pimkd/internal/geom"
)

// Item is a point with an opaque identifier, the unit stored in the tree.
type Item struct {
	P  geom.Point
	ID int32
}

// Meter accumulates the shared-memory cost metrics of a Tree.
type Meter struct {
	// NodeVisits counts tree nodes touched by queries and update routing;
	// it is the work and communication proxy for the shared-memory rows of
	// Table 1.
	NodeVisits int64
	// PointOps counts point-granularity work (partitioning, distance
	// evaluations, leaf scans).
	PointOps int64
	// CacheXfers counts modeled streaming transfers: every construction or
	// rebuild pass over a working set larger than the configured cache
	// charges one transfer per point (the ideal-cache streaming bound).
	CacheXfers int64
	// Rebuilds counts partial reconstructions triggered by imbalance.
	Rebuilds int64
	// RebuiltPoints counts the total points involved in reconstructions.
	RebuiltPoints int64
}

// Reset zeroes the meter.
func (m *Meter) Reset() { *m = Meter{} }

// Config holds the tree parameters.
type Config struct {
	// Dim is the point dimension (required, >= 1).
	Dim int
	// Alpha is the balance slack: an internal node is in balance while
	// T(big child) <= (1+Alpha)·T(small child) + 1. Alpha = O(1) gives the
	// paper's semi-balanced regime. Default 1.0.
	Alpha float64
	// LeafSize is the leaf bucket capacity. Default 8.
	LeafSize int
	// CacheM is the modeled cache size in words used for skeleton sizing
	// and transfer metering. Default 1 << 16.
	CacheM int
	// Oversample is the σ over-sampling rate for skeleton construction.
	// Default 32 (the theory uses log³ n; a generous constant keeps the
	// sample median concentrated at bench scales).
	Oversample int
	// Seed drives sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Dim < 1 {
		panic("pkdtree: Config.Dim must be >= 1")
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.0
	}
	if c.LeafSize <= 0 {
		c.LeafSize = 8
	}
	if c.CacheM <= 0 {
		c.CacheM = 1 << 16
	}
	if c.Oversample <= 0 {
		c.Oversample = 32
	}
	return c
}

// node is a tree node; internal nodes carry the splitting hyperplane and
// leaves carry the point bucket.
type node struct {
	axis  int32
	split float64
	left  *node
	right *node
	size  int      // exact number of items in this subtree
	box   geom.Box // tight bounding box of the subtree's items
	pts   []Item   // non-nil iff leaf
}

func (nd *node) leaf() bool { return nd.pts != nil }

// Tree is a batch-dynamic α-balanced kd-tree.
type Tree struct {
	cfg   Config
	root  *node
	rng   *rand.Rand
	Meter Meter
}

// New builds a tree over items (which may be empty) with the given
// configuration.
func New(cfg Config, items []Item) *Tree {
	cfg = cfg.withDefaults()
	t := &Tree{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if len(items) > 0 {
		own := make([]Item, len(items))
		copy(own, items)
		t.root = t.build(own)
	}
	return t
}

// Size returns the number of stored items.
func (t *Tree) Size() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// Dim returns the point dimension.
func (t *Tree) Dim() int { return t.cfg.Dim }

// Alpha returns the configured balance slack.
func (t *Tree) Alpha() float64 { return t.cfg.Alpha }

// ConfigSnapshot returns the tree's effective configuration (defaults
// applied), for persistence-layer snapshot headers.
func (t *Tree) ConfigSnapshot() Config { return t.cfg }

// Height returns the height of the tree (0 for empty, 1 for a single leaf).
func (t *Tree) Height() int { return height(t.root) }

func height(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.leaf() {
		return 1
	}
	l, r := height(nd.left), height(nd.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Items returns all stored items (in tree order). It is O(n).
func (t *Tree) Items() []Item {
	out := make([]Item, 0, t.Size())
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.leaf() {
			out = append(out, nd.pts...)
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return out
}

// CellInfo describes one tree node for structural analysis (the
// kNN-friendliness checks of the paper's Appendix A examine cell shapes
// and sibling sizes).
type CellInfo struct {
	// Depth is the node's depth (root = 0).
	Depth int
	// Size is the subtree's point count.
	Size int
	// Box is the tight bounding box of the subtree's points.
	Box geom.Box
	// SiblingSize is the point count of the node's sibling (0 at the root).
	SiblingSize int
	// Leaf marks leaf nodes.
	Leaf bool
}

// WalkCells invokes fn for every node in the tree, in DFS preorder.
func (t *Tree) WalkCells(fn func(CellInfo)) {
	var rec func(nd *node, depth, sibling int)
	rec = func(nd *node, depth, sibling int) {
		if nd == nil {
			return
		}
		fn(CellInfo{Depth: depth, Size: nd.size, Box: nd.box, SiblingSize: sibling, Leaf: nd.leaf()})
		if !nd.leaf() {
			rec(nd.left, depth+1, nd.right.size)
			rec(nd.right, depth+1, nd.left.size)
		}
	}
	rec(t.root, 0, 0)
}

// CheckInvariants validates the structural invariants: exact subtree sizes,
// bounding-box containment, split-plane routing consistency, and α-balance.
// It returns an error describing the first violation found, or nil.
func (t *Tree) CheckInvariants() error {
	var check func(nd *node) (int, error)
	check = func(nd *node) (int, error) {
		if nd == nil {
			return 0, nil
		}
		if nd.leaf() {
			if len(nd.pts) != nd.size {
				return 0, fmt.Errorf("leaf size %d != len(pts) %d", nd.size, len(nd.pts))
			}
			for _, it := range nd.pts {
				if !nd.box.Contains(it.P) {
					return 0, fmt.Errorf("leaf box does not contain item %d", it.ID)
				}
			}
			return nd.size, nil
		}
		ls, err := check(nd.left)
		if err != nil {
			return 0, err
		}
		rs, err := check(nd.right)
		if err != nil {
			return 0, err
		}
		if ls+rs != nd.size {
			return 0, fmt.Errorf("internal size %d != %d + %d", nd.size, ls, rs)
		}
		if violated(ls, rs, t.cfg.Alpha) && !t.forcedImbalance(nd) {
			return 0, fmt.Errorf("alpha-balance violated: children %d vs %d (alpha=%g)", ls, rs, t.cfg.Alpha)
		}
		return nd.size, nil
	}
	_, err := check(t.root)
	return err
}

// forcedImbalance reports whether nd's imbalance is unavoidable for its
// point multiset: α-balance is a single-cut property at every node, so if
// the best achievable cut (most balanced axis and value) still violates α,
// no rebuild can fix this node — duplicate-heavy multisets (e.g. one point
// carrying more than half the multiplicity) are like that.
func (t *Tree) forcedImbalance(nd *node) bool {
	items := collect(nd, nil)
	box := itemsBox(items)
	axis, split, ok := exactSplit(items, box)
	if !ok {
		return true // all points identical: indivisible
	}
	left := 0
	for _, it := range items {
		if it.P[axis] < split {
			left++
		}
	}
	return violated(left, len(items)-left, t.cfg.Alpha)
}

// indivisibleLeaf reports whether nd is a leaf whose points are all
// identical.
func indivisibleLeaf(nd *node) bool {
	if nd == nil || !nd.leaf() || len(nd.pts) == 0 {
		return false
	}
	for _, it := range nd.pts[1:] {
		if !it.P.Equal(nd.pts[0].P) {
			return false
		}
	}
	return true
}

// violated reports whether child sizes (ls, rs) break the α-balance
// condition T(big) <= (1+α)·T(small) + 1. The +1 slack keeps tiny subtrees
// (sizes 0..2) legal, matching the paper's asymptotic definition.
func violated(ls, rs int, alpha float64) bool {
	big, small := ls, rs
	if rs > ls {
		big, small = rs, ls
	}
	return float64(big) > (1+alpha)*float64(small)+1
}

// routeLeft reports whether a point with coordinate v on the split axis is
// routed to the left child. The rule (v < split goes left) is used uniformly
// by construction, insertion, deletion, and search so routing stays
// consistent across rebuilds.
func routeLeft(v, split float64) bool { return v < split }
