package pkdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pimkd/internal/geom"
	"pimkd/internal/workload"
)

func makeItems(pts []geom.Point, base int32) []Item {
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{P: p, ID: base + int32(i)}
	}
	return items
}

func newTree(t *testing.T, n, dim int, seed int64) (*Tree, []Item) {
	t.Helper()
	items := makeItems(workload.Uniform(n, dim, seed), 0)
	tree := New(Config{Dim: dim, Seed: seed}, items)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after build: %v", err)
	}
	return tree, items
}

func TestBuildSizes(t *testing.T) {
	for _, n := range []int{0, 1, 8, 9, 1000, 30000} {
		tree, _ := newTree(t, n, 3, int64(n)+1)
		if tree.Size() != n {
			t.Fatalf("n=%d size=%d", n, tree.Size())
		}
	}
}

func TestBuildHeightLogarithmic(t *testing.T) {
	tree, _ := newTree(t, 1<<15, 2, 5)
	h := tree.Height()
	if h > 3*15 {
		t.Fatalf("height %d too large for n=2^15", h)
	}
}

func TestDuplicatePointsBuild(t *testing.T) {
	// All-identical points must collapse into one oversized leaf, not
	// recurse forever.
	p := geom.Point{0.5, 0.5}
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{P: p.Clone(), ID: int32(i)}
	}
	tree := New(Config{Dim: 2}, items)
	if tree.Size() != 100 {
		t.Fatalf("size %d", tree.Size())
	}
	pts, _ := tree.LeafSearch(p)
	if len(pts) != 100 {
		t.Fatalf("leaf holds %d", len(pts))
	}
}

func TestHeavyDuplicateCoordinate(t *testing.T) {
	// Half the points share one x coordinate; the build must still make
	// progress and balance within slack.
	rng := rand.New(rand.NewSource(3))
	items := make([]Item, 4000)
	for i := range items {
		x := 0.5
		if i%2 == 0 {
			x = rng.Float64()
		}
		items[i] = Item{P: geom.Point{x, rng.Float64()}, ID: int32(i)}
	}
	tree := New(Config{Dim: 2}, items)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeafSearchFindsItem(t *testing.T) {
	tree, items := newTree(t, 5000, 2, 7)
	for i := 0; i < 200; i++ {
		it := items[i*17%len(items)]
		if !tree.Contains(it) {
			t.Fatalf("lost item %d", it.ID)
		}
	}
	if tree.Contains(Item{P: geom.Point{2, 2}, ID: 999999}) {
		t.Fatal("found nonexistent item")
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	tree, items := newTree(t, 2000, 3, 11)
	qs := workload.Uniform(50, 3, 13)
	for _, q := range qs {
		got := tree.KNN(q, 7)
		want := bruteDists(items, q)[:7]
		for i := range got {
			if math.Abs(got[i].Dist2-want[i]) > 1e-12 {
				t.Fatalf("rank %d: %g want %g", i, got[i].Dist2, want[i])
			}
		}
	}
}

func TestANNBound(t *testing.T) {
	tree, items := newTree(t, 2000, 2, 17)
	qs := workload.Uniform(50, 2, 19)
	eps := 0.8
	for _, q := range qs {
		got := tree.ANN(q, 3, eps)
		want := bruteDists(items, q)[:3]
		if math.Sqrt(got[len(got)-1].Dist2) > (1+eps)*math.Sqrt(want[2])+1e-12 {
			t.Fatalf("ANN exceeded bound")
		}
	}
}

func TestRangeAndRadius(t *testing.T) {
	tree, items := newTree(t, 3000, 2, 23)
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 40; i++ {
		lo := geom.Point{rng.Float64() * 0.7, rng.Float64() * 0.7}
		hi := geom.Point{lo[0] + 0.3*rng.Float64(), lo[1] + 0.3*rng.Float64()}
		box := geom.NewBox(lo, hi)
		want := 0
		for _, it := range items {
			if box.Contains(it.P) {
				want++
			}
		}
		if got := tree.RangeCount(box); got != want {
			t.Fatalf("count %d want %d", got, want)
		}
		if got := len(tree.RangeReport(box)); got != want {
			t.Fatalf("report %d want %d", got, want)
		}
	}
	q := geom.Point{0.5, 0.5}
	r := 0.2
	want := 0
	for _, it := range items {
		if geom.Dist2(q, it.P) <= r*r {
			want++
		}
	}
	if got := tree.RadiusCount(q, r); got != want {
		t.Fatalf("radius count %d want %d", got, want)
	}
	if got := len(tree.RadiusReport(q, r)); got != want {
		t.Fatalf("radius report %d want %d", got, want)
	}
}

func TestBatchInsertDelete(t *testing.T) {
	tree, items := newTree(t, 2000, 2, 31)
	extra := makeItems(workload.Uniform(1500, 2, 37), 10000)
	tree.BatchInsert(extra)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("after insert: %v", err)
	}
	if tree.Size() != 3500 {
		t.Fatalf("size %d", tree.Size())
	}
	tree.BatchDelete(items)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("after delete: %v", err)
	}
	if tree.Size() != 1500 {
		t.Fatalf("size %d", tree.Size())
	}
	for _, it := range extra[:100] {
		if !tree.Contains(it) {
			t.Fatalf("lost inserted item %d", it.ID)
		}
	}
	for _, it := range items[:100] {
		if tree.Contains(it) {
			t.Fatalf("deleted item %d still present", it.ID)
		}
	}
}

func TestDeleteEverything(t *testing.T) {
	tree, items := newTree(t, 500, 2, 41)
	tree.BatchDelete(items)
	if tree.Size() != 0 {
		t.Fatalf("size %d after deleting all", tree.Size())
	}
	// Reinsertion works on the emptied tree.
	tree.BatchInsert(items[:100])
	if tree.Size() != 100 {
		t.Fatalf("size %d after reinsertion", tree.Size())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissingIgnored(t *testing.T) {
	tree, _ := newTree(t, 300, 2, 43)
	ghost := makeItems(workload.Uniform(50, 2, 47), 50000)
	tree.BatchDelete(ghost)
	if tree.Size() != 300 {
		t.Fatalf("size changed to %d", tree.Size())
	}
}

func TestRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := New(Config{Dim: 2, Seed: seed}, nil)
		reference := map[int32]geom.Point{}
		nextID := int32(0)
		for step := 0; step < 12; step++ {
			if rng.Intn(2) == 0 || len(reference) == 0 {
				batch := make([]Item, rng.Intn(120)+1)
				for i := range batch {
					p := geom.Point{rng.Float64(), rng.Float64()}
					batch[i] = Item{P: p, ID: nextID}
					reference[nextID] = p
					nextID++
				}
				tree.BatchInsert(batch)
			} else {
				var batch []Item
				for id, p := range reference {
					batch = append(batch, Item{P: p, ID: id})
					if len(batch) >= 60 {
						break
					}
				}
				for _, it := range batch {
					delete(reference, it.ID)
				}
				tree.BatchDelete(batch)
			}
			if tree.Size() != len(reference) {
				return false
			}
			if err := tree.CheckInvariants(); err != nil {
				return false
			}
		}
		got := tree.Items()
		if len(got) != len(reference) {
			return false
		}
		for _, it := range got {
			if p, ok := reference[it.ID]; !ok || !p.Equal(it.P) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterAccumulates(t *testing.T) {
	tree, _ := newTree(t, 5000, 2, 53)
	tree.Meter.Reset()
	tree.LeafSearch(geom.Point{0.5, 0.5})
	if tree.Meter.NodeVisits == 0 {
		t.Fatal("no node visits metered")
	}
}

func TestItemsRoundTrip(t *testing.T) {
	tree, items := newTree(t, 1000, 2, 59)
	got := tree.Items()
	if len(got) != len(items) {
		t.Fatalf("items %d want %d", len(got), len(items))
	}
	ids := map[int32]bool{}
	for _, it := range got {
		ids[it.ID] = true
	}
	if len(ids) != len(items) {
		t.Fatal("duplicate or missing ids")
	}
}

func bruteDists(items []Item, q geom.Point) []float64 {
	ds := make([]float64, len(items))
	for i, it := range items {
		ds[i] = geom.Dist2(q, it.P)
	}
	sort.Float64s(ds)
	return ds
}
