package pkdtree

import (
	"sync/atomic"

	"pimkd/internal/geom"
	"pimkd/internal/heapx"
)

// LeafSearch returns the items stored in the leaf that the query point
// routes to, along with the depth of that leaf. It is the primitive point
// query of Table 1.
func (t *Tree) LeafSearch(q geom.Point) (items []Item, depth int) {
	if t.root == nil {
		return nil, 0
	}
	nd := t.root
	for !nd.leaf() {
		atomic.AddInt64(&t.Meter.NodeVisits, 1)
		depth++
		if routeLeft(q[int(nd.axis)], nd.split) {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	atomic.AddInt64(&t.Meter.NodeVisits, 1)
	return nd.pts, depth + 1
}

// Contains reports whether an item with the given coordinates and ID is
// stored in the tree.
func (t *Tree) Contains(it Item) bool {
	pts, _ := t.LeafSearch(it.P)
	for _, p := range pts {
		if p.ID == it.ID && p.P.Equal(it.P) {
			return true
		}
	}
	return false
}

// KNN returns the k nearest neighbors of q by ascending distance (fewer if
// the tree holds fewer than k items), using the classic prune-by-bounding-
// box depth-first search.
func (t *Tree) KNN(q geom.Point, k int) []heapx.Candidate {
	best := heapx.NewKBest(k)
	t.knnVisit(t.root, q, best, 1)
	return best.Sorted()
}

// ANN returns (1+eps)-approximate k nearest neighbors: each reported
// distance is at most (1+eps) times the true k-th distance. eps = 0 matches
// KNN exactly.
func (t *Tree) ANN(q geom.Point, k int, eps float64) []heapx.Candidate {
	best := heapx.NewKBest(k)
	t.knnVisit(t.root, q, best, (1+eps)*(1+eps))
	return best.Sorted()
}

// knnVisit prunes a subtree when its box distance exceeds bound/shrink2
// (shrink2 = (1+eps)² implements the ANN early-termination rule).
func (t *Tree) knnVisit(nd *node, q geom.Point, best *heapx.KBest, shrink2 float64) {
	if nd == nil {
		return
	}
	atomic.AddInt64(&t.Meter.NodeVisits, 1)
	if nd.leaf() {
		atomic.AddInt64(&t.Meter.PointOps, int64(len(nd.pts)))
		for _, it := range nd.pts {
			best.Offer(geom.Dist2(q, it.P), it.ID)
		}
		return
	}
	near, far := nd.left, nd.right
	if !routeLeft(q[int(nd.axis)], nd.split) {
		near, far = far, near
	}
	// <= not <: the canonical (dist2, id) tie-break means a cell at exactly
	// the bound can still hold a displacing equal-distance candidate.
	if near.box.Dist2ToPoint(q)*shrink2 <= best.Bound() {
		t.knnVisit(near, q, best, shrink2)
	}
	if far.box.Dist2ToPoint(q)*shrink2 <= best.Bound() {
		t.knnVisit(far, q, best, shrink2)
	}
}

// RangeReport returns all items inside the query box.
func (t *Tree) RangeReport(box geom.Box) []Item {
	var out []Item
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd == nil || !box.Intersects(nd.box) {
			return
		}
		atomic.AddInt64(&t.Meter.NodeVisits, 1)
		if box.ContainsBox(nd.box) {
			out = collect(nd, out)
			atomic.AddInt64(&t.Meter.PointOps, int64(nd.size))
			return
		}
		if nd.leaf() {
			atomic.AddInt64(&t.Meter.PointOps, int64(len(nd.pts)))
			for _, it := range nd.pts {
				if box.Contains(it.P) {
					out = append(out, it)
				}
			}
			return
		}
		visit(nd.left)
		visit(nd.right)
	}
	visit(t.root)
	return out
}

// RangeCount returns the number of items inside the query box, using
// subtree-size shortcuts for fully contained cells.
func (t *Tree) RangeCount(box geom.Box) int {
	var visit func(nd *node) int
	visit = func(nd *node) int {
		if nd == nil || !box.Intersects(nd.box) {
			return 0
		}
		atomic.AddInt64(&t.Meter.NodeVisits, 1)
		if box.ContainsBox(nd.box) {
			return nd.size
		}
		if nd.leaf() {
			atomic.AddInt64(&t.Meter.PointOps, int64(len(nd.pts)))
			c := 0
			for _, it := range nd.pts {
				if box.Contains(it.P) {
					c++
				}
			}
			return c
		}
		return visit(nd.left) + visit(nd.right)
	}
	return visit(t.root)
}

// RadiusCount returns the number of items within Euclidean distance r of q
// (inclusive), the primitive used by density peak clustering.
func (t *Tree) RadiusCount(q geom.Point, r float64) int {
	r2 := r * r
	var visit func(nd *node) int
	visit = func(nd *node) int {
		if nd == nil || nd.box.Dist2ToPoint(q) > r2 {
			return 0
		}
		atomic.AddInt64(&t.Meter.NodeVisits, 1)
		if nd.box.InsideBall(q, r) {
			return nd.size
		}
		if nd.leaf() {
			atomic.AddInt64(&t.Meter.PointOps, int64(len(nd.pts)))
			c := 0
			for _, it := range nd.pts {
				if geom.Dist2(q, it.P) <= r2 {
					c++
				}
			}
			return c
		}
		return visit(nd.left) + visit(nd.right)
	}
	return visit(t.root)
}

// RadiusReport returns all items within Euclidean distance r of q.
func (t *Tree) RadiusReport(q geom.Point, r float64) []Item {
	r2 := r * r
	var out []Item
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd == nil || nd.box.Dist2ToPoint(q) > r2 {
			return
		}
		atomic.AddInt64(&t.Meter.NodeVisits, 1)
		if nd.leaf() {
			atomic.AddInt64(&t.Meter.PointOps, int64(len(nd.pts)))
			for _, it := range nd.pts {
				if geom.Dist2(q, it.P) <= r2 {
					out = append(out, it)
				}
			}
			return
		}
		visit(nd.left)
		visit(nd.right)
	}
	visit(t.root)
	return out
}
