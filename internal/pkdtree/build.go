package pkdtree

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"pimkd/internal/geom"
	"pimkd/internal/parallel"
	"pimkd/internal/pim"
)

// build constructs a subtree over items using the PKD multi-level skeleton
// scheme: sample a sketch sized to the cache, build h levels of splitting
// hyperplanes from it, flush all points through the skeleton in one pass,
// and recurse on the buckets in parallel. Ownership of the items slice
// passes to the tree.
func (t *Tree) build(items []Item) *node {
	return t.buildSeeded(items, uint64(t.cfg.Seed)+0x51ed2701)
}

func (t *Tree) buildSeeded(items []Item, seed uint64) *node {
	n := len(items)
	if n == 0 {
		return nil
	}
	atomic.AddInt64(&t.Meter.PointOps, int64(n))
	if n*t.cfg.Dim > t.cfg.CacheM {
		// This pass streams the working set through the cache.
		atomic.AddInt64(&t.Meter.CacheXfers, int64(n))
	}
	if n <= t.cfg.LeafSize {
		return newLeaf(items)
	}
	box := itemsBox(items)
	if _, w := box.LongestAxis(); w == 0 {
		// All points identical: an oversized leaf is the only legal shape.
		return newLeaf(items)
	}

	// Levels per pass: as many as the skeleton sample fits in cache, but no
	// more than needed to reach leaf-sized buckets.
	h := 1
	for (2<<h)*t.cfg.Oversample <= t.cfg.CacheM && (n>>h) > t.cfg.LeafSize && h < 20 {
		h++
	}

	rng := rand.New(rand.NewSource(int64(pim.Mix64(seed))))
	sampleSize := (1 << h) * t.cfg.Oversample
	if sampleSize > n {
		sampleSize = n
	}
	sample := make([]Item, sampleSize)
	for i := range sample {
		sample[i] = items[rng.Intn(n)]
	}

	sk := buildSkeleton(sample, h)
	if sk == nil {
		return t.buildExact(items, box)
	}

	// Flush all items through the skeleton into buckets with a stable
	// parallel scatter (bucket contents and order match the sequential
	// append loop exactly).
	nb := countBuckets(sk)
	scattered, offs := parallel.CountingSortByKey(items, nb, func(it Item) int {
		return sk.route(it.P)
	})
	buckets := make([][]Item, nb)
	for b := 0; b < nb; b++ {
		buckets[b] = scattered[offs[b]:offs[b+1]:offs[b+1]]
	}
	atomic.AddInt64(&t.Meter.PointOps, int64(n*h))
	for _, b := range buckets {
		if len(b) == n {
			// No progress (heavy duplicates defeated the sample): fall back
			// to the exact object-median build.
			return t.buildExact(items, box)
		}
	}

	// Recurse on buckets (in parallel) and assemble the skeleton into real
	// nodes, collapsing empty sides and fixing any α-violation exactly.
	built := make([]*node, nb)
	parallel.For(nb, func(i int) {
		built[i] = t.buildSeeded(buckets[i], pim.Mix64(seed)+uint64(i)+1)
	})
	return t.assemble(sk, built)
}

// newLeaf wraps items into a leaf node (items must be non-empty). The
// bucket copies the input so that later appends to one leaf can never
// scribble over a sibling leaf sharing the same partition backing array.
func newLeaf(items []Item) *node {
	pts := make([]Item, len(items))
	copy(pts, items)
	return &node{size: len(pts), box: itemsBox(pts), pts: pts}
}

// itemsBox computes the tight bounding box, scanning chunks in parallel
// for large inputs; float64 min/max merges are exact and commutative, so
// the result is bit-identical to the sequential scan.
func itemsBox(items []Item) geom.Box {
	if len(items) >= 4096 {
		var mu sync.Mutex
		var out geom.Box
		first := true
		parallel.ForChunked(len(items), func(lo, hi int) {
			b := itemsBoxSeq(items[lo:hi])
			mu.Lock()
			if first {
				out, first = b, false
			} else {
				out = unionBox(out, b)
			}
			mu.Unlock()
		})
		return out
	}
	return itemsBoxSeq(items)
}

func itemsBoxSeq(items []Item) geom.Box {
	lo := items[0].P.Clone()
	hi := items[0].P.Clone()
	for _, it := range items[1:] {
		for d := range it.P {
			if it.P[d] < lo[d] {
				lo[d] = it.P[d]
			}
			if it.P[d] > hi[d] {
				hi[d] = it.P[d]
			}
		}
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// skel is a treelet skeleton node. Leaf skeleton nodes (l == nil) are bucket
// slots identified by bucket.
type skel struct {
	axis   int
	split  float64
	l, r   *skel
	bucket int
}

func (s *skel) route(p geom.Point) int {
	for s.l != nil {
		if routeLeft(p[s.axis], s.split) {
			s = s.l
		} else {
			s = s.r
		}
	}
	return s.bucket
}

func countBuckets(s *skel) int {
	next := 0
	var number func(s *skel)
	number = func(s *skel) {
		if s.l == nil {
			s.bucket = next
			next++
			return
		}
		number(s.l)
		number(s.r)
	}
	number(s)
	return next
}

// buildSkeleton builds h levels of splits from the sample. It returns nil if
// no valid split exists at the top (degenerate sample).
func buildSkeleton(sample []Item, h int) *skel {
	if h == 0 || len(sample) < 2 {
		return &skel{}
	}
	box := itemsBox(sample)
	axis, split, ok := medianSplit(sample, box)
	if !ok {
		return &skel{}
	}
	var left, right []Item
	for _, it := range sample {
		if routeLeft(it.P[axis], split) {
			left = append(left, it)
		} else {
			right = append(right, it)
		}
	}
	return &skel{
		axis:  axis,
		split: split,
		l:     buildSkeleton(left, h-1),
		r:     buildSkeleton(right, h-1),
	}
}

// medianSplit picks the widest positive-width axis of box and the sample
// median along it, adjusted so both sides of the split are non-empty under
// the (v < split → left) routing rule. ok is false when every axis is
// degenerate.
func medianSplit(sample []Item, box geom.Box) (axis int, split float64, ok bool) {
	type axisWidth struct {
		axis  int
		width float64
	}
	dims := make([]axisWidth, len(box.Lo))
	for d := range box.Lo {
		dims[d] = axisWidth{d, box.Hi[d] - box.Lo[d]}
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].width > dims[j].width })

	coords := make([]float64, len(sample))
	for _, aw := range dims {
		if aw.width <= 0 {
			break
		}
		a := aw.axis
		for i, it := range sample {
			coords[i] = it.P[a]
		}
		parallel.SortFloat64s(coords)
		v := coords[len(coords)/2]
		if v > coords[0] {
			return a, v, true
		}
		// The lower half is all duplicates of the minimum; move the split
		// to the first strictly larger value.
		for _, c := range coords {
			if c > v {
				return a, c, true
			}
		}
		// Whole sample identical on this axis; try the next-widest axis.
	}
	return 0, 0, false
}

// assemble turns a routed skeleton plus built bucket subtrees into real
// nodes, dropping empty sides and exactly rebuilding any α-violating join.
func (t *Tree) assemble(s *skel, built []*node) *node {
	if s.l == nil {
		return built[s.bucket]
	}
	l := t.assemble(s.l, built)
	r := t.assemble(s.r, built)
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if violated(l.size, r.size, t.cfg.Alpha) {
		items := make([]Item, 0, l.size+r.size)
		items = collect(l, items)
		items = collect(r, items)
		box := itemsBox(items)
		atomic.AddInt64(&t.Meter.PointOps, int64(len(items)))
		return t.buildExact(items, box)
	}
	return &node{
		axis:  int32(s.axis),
		split: s.split,
		left:  l,
		right: r,
		size:  l.size + r.size,
		box:   unionBox(l.box, r.box),
	}
}

func unionBox(a, b geom.Box) geom.Box {
	u := a.Clone()
	for d := range u.Lo {
		if b.Lo[d] < u.Lo[d] {
			u.Lo[d] = b.Lo[d]
		}
		if b.Hi[d] > u.Hi[d] {
			u.Hi[d] = b.Hi[d]
		}
	}
	return u
}

func collect(nd *node, out []Item) []Item {
	if nd == nil {
		return out
	}
	if nd.leaf() {
		return append(out, nd.pts...)
	}
	out = collect(nd.left, out)
	return collect(nd.right, out)
}

// buildExact is the deterministic object-median build used as the fallback
// for degenerate data and for rebalancing rebuilds of small subtrees. It
// guarantees progress on any input (identical points become one leaf).
func (t *Tree) buildExact(items []Item, box geom.Box) *node {
	n := len(items)
	if n == 0 {
		return nil
	}
	atomic.AddInt64(&t.Meter.PointOps, int64(n))
	if n*t.cfg.Dim > t.cfg.CacheM {
		atomic.AddInt64(&t.Meter.CacheXfers, int64(n))
	}
	if n <= t.cfg.LeafSize {
		return newLeaf(items)
	}
	axis, split, ok := exactSplit(items, box)
	if !ok {
		return newLeaf(items)
	}
	// Partition in place: < split left, >= split right.
	i, j := 0, n-1
	for i <= j {
		if routeLeft(items[i].P[axis], split) {
			i++
		} else {
			items[i], items[j] = items[j], items[i]
			j--
		}
	}
	left := items[:i]
	right := items[i:]
	var l, r *node
	if n >= 4096 {
		parallel.Do(
			func() { l = t.buildExact(left, itemsBox(left)) },
			func() { r = t.buildExact(right, itemsBox(right)) },
		)
	} else {
		l = t.buildExact(left, itemsBox(left))
		r = t.buildExact(right, itemsBox(right))
	}
	return &node{
		axis:  int32(axis),
		split: split,
		left:  l,
		right: r,
		size:  n,
		box:   unionBox(l.box, r.box),
	}
}

// exactSplit finds the object-median split, guaranteeing both sides
// non-empty. Axes are tried widest-first; when duplicate coordinates make
// the median split lopsided on one axis, the axis whose split is closest to
// an even partition wins. ok is false when all points are identical.
func exactSplit(items []Item, box geom.Box) (axis int, split float64, ok bool) {
	type axisWidth struct {
		axis  int
		width float64
	}
	dims := make([]axisWidth, len(box.Lo))
	for d := range box.Lo {
		dims[d] = axisWidth{d, box.Hi[d] - box.Lo[d]}
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].width > dims[j].width })
	n := len(items)
	coords := make([]float64, n)
	bestSkew := n + 1
	for _, aw := range dims {
		if aw.width <= 0 {
			break
		}
		a := aw.axis
		parallel.For(n, func(i int) {
			coords[i] = items[i].P[a]
		})
		parallel.SortFloat64s(coords)
		// Two candidate cuts bracket the ideal n/2: the median value and
		// the next distinct value above it. With duplicates, the balanced
		// cut can be either (every value between two consecutive distinct
		// coordinates induces the same partition).
		v := coords[n/2]
		for _, cand := range []float64{v, nextDistinct(coords, v)} {
			left := sort.SearchFloat64s(coords, cand)
			if left < 1 || left > n-1 {
				continue
			}
			skew := left - n/2
			if skew < 0 {
				skew = -skew
			}
			if skew < bestSkew {
				bestSkew, axis, split, ok = skew, a, cand, true
			}
		}
		if ok && bestSkew <= n/16 {
			// Near-even split on the widest viable axis: good enough.
			break
		}
	}
	return axis, split, ok
}

// nextDistinct returns the smallest value in the sorted slice strictly
// greater than v (or v itself when none exists).
func nextDistinct(sorted []float64, v float64) float64 {
	i := sort.SearchFloat64s(sorted, v)
	for ; i < len(sorted); i++ {
		if sorted[i] > v {
			return sorted[i]
		}
	}
	return v
}
