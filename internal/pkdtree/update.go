package pkdtree

import (
	"sync/atomic"
)

// BatchInsert inserts a batch of items using the scapegoat-style partial
// reconstruction scheme: every item is routed root-to-leaf with exact
// subtree counters updated along the way, and the highest node whose
// α-balance (or leaf capacity) is violated afterwards is rebuilt from its
// gathered points. Per Lemma 2.2 the amortized work per element is
// O(log²n / α).
func (t *Tree) BatchInsert(items []Item) {
	if len(items) == 0 {
		return
	}
	if t.root == nil {
		own := make([]Item, len(items))
		copy(own, items)
		t.root = t.build(own)
		return
	}
	for _, it := range items {
		nd := t.root
		nd.box = nd.box.Expand(it.P)
		for !nd.leaf() {
			atomic.AddInt64(&t.Meter.NodeVisits, 1)
			nd.size++
			if routeLeft(it.P[int(nd.axis)], nd.split) {
				nd = nd.left
			} else {
				nd = nd.right
			}
			nd.box = nd.box.Expand(it.P)
		}
		atomic.AddInt64(&t.Meter.NodeVisits, 1)
		nd.size++
		nd.pts = append(nd.pts, it)
	}
	t.root = t.rebuildViolations(t.root)
}

// BatchDelete removes the given items (matched by coordinates + ID). Items
// not present are ignored. Counters are updated exactly and imbalanced
// subtrees rebuilt, mirroring BatchInsert.
func (t *Tree) BatchDelete(items []Item) {
	if len(items) == 0 || t.root == nil {
		return
	}
	for _, it := range items {
		t.deleteOne(it)
	}
	if t.root != nil && t.root.size == 0 {
		t.root = nil
		return
	}
	if t.root != nil {
		t.root = t.rebuildViolations(t.root)
	}
}

// deleteOne removes one item; it returns true if the item was found.
// Subtree sizes along the path are decremented only when the item exists,
// which requires a find-first pass (metered as node visits as well).
func (t *Tree) deleteOne(it Item) bool {
	// Pass 1: locate the leaf and confirm membership.
	nd := t.root
	for !nd.leaf() {
		atomic.AddInt64(&t.Meter.NodeVisits, 1)
		if routeLeft(it.P[int(nd.axis)], nd.split) {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	atomic.AddInt64(&t.Meter.NodeVisits, 1)
	found := -1
	for i, p := range nd.pts {
		if p.ID == it.ID && p.P.Equal(it.P) {
			found = i
			break
		}
	}
	atomic.AddInt64(&t.Meter.PointOps, int64(len(nd.pts)))
	if found < 0 {
		return false
	}
	// Pass 2: decrement sizes along the path and remove from the leaf.
	nd = t.root
	for !nd.leaf() {
		nd.size--
		if routeLeft(it.P[int(nd.axis)], nd.split) {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	nd.size--
	for i, p := range nd.pts {
		if p.ID == it.ID && p.P.Equal(it.P) {
			nd.pts[i] = nd.pts[len(nd.pts)-1]
			nd.pts = nd.pts[:len(nd.pts)-1]
			break
		}
	}
	return true
}

// rebuildViolations walks down from nd and rebuilds the highest violating
// subtrees (α-imbalance, leaf overflow, or an emptied child). It returns the
// possibly replaced node.
func (t *Tree) rebuildViolations(nd *node) *node {
	if nd == nil {
		return nil
	}
	if nd.size == 0 {
		return nil
	}
	if nd.leaf() {
		if len(nd.pts) > t.cfg.LeafSize && !indivisibleLeaf(nd) {
			return t.rebuildSubtree(nd)
		}
		return nd
	}
	ls, rs := subSize(nd.left), subSize(nd.right)
	if ls == 0 || rs == 0 || (violated(ls, rs, t.cfg.Alpha) && !t.forcedImbalance(nd)) {
		// Forced imbalance (no cut of the multiset can satisfy α) is
		// exempt: rebuilding cannot improve it and would churn every batch.
		return t.rebuildSubtree(nd)
	}
	nd.left = t.rebuildViolations(nd.left)
	nd.right = t.rebuildViolations(nd.right)
	nd.box = unionBox(nd.left.box, nd.right.box)
	return nd
}

func subSize(nd *node) int {
	if nd == nil {
		return 0
	}
	return nd.size
}

// rebuildSubtree gathers a subtree's points and reconstructs it.
func (t *Tree) rebuildSubtree(nd *node) *node {
	items := collect(nd, make([]Item, 0, nd.size))
	atomic.AddInt64(&t.Meter.Rebuilds, 1)
	atomic.AddInt64(&t.Meter.RebuiltPoints, int64(len(items)))
	return t.build(items)
}
