// Quickstart: build a PIM-kd-tree over a million-ish random points, run the
// core operations (LeafSearch, kNN, range query, batch insert/delete), and
// print the PIM-Model cost of each step.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/pim"
	"pimkd/internal/workload"
)

func main() {
	const (
		n   = 200_000
		dim = 3
		P   = 64 // PIM modules
	)

	// A machine with P PIM modules and a 4M-word CPU cache.
	mach := pim.NewMachine(P, 1<<22)
	tree := core.New(core.Config{Dim: dim, Seed: 42}, mach)

	// Bulk-load uniform points.
	pts := workload.Uniform(n, dim, 1)
	items := make([]core.Item, n)
	for i, p := range pts {
		items[i] = core.Item{P: p, ID: int32(i)}
	}
	tree.Build(items)
	fmt.Printf("built PIM-kd-tree: n=%d, height=%d, space factor %.2f (log*P=%d)\n",
		tree.Size(), tree.Height(),
		float64(tree.TotalCopies())/float64(tree.NodeCount()), tree.LogStarP())
	fmt.Printf("construction cost: %v\n\n", mach.Stats())

	// Batched point search.
	qs := workload.Sample(pts, 8192, 0.001, 2)
	pre := mach.Stats()
	leaves := tree.LeafSearch(qs)
	d := mach.Stats().Sub(pre)
	fmt.Printf("LeafSearch of %d queries: %.1f words/query off-chip (vs log n = %d tree levels)\n",
		len(qs), float64(d.Communication)/float64(len(qs)), tree.Height())
	fmt.Printf("first query landed in a leaf with %d points\n\n", len(tree.LeafItems(leaves[0])))

	// Batched kNN.
	pre = mach.Stats()
	nn := tree.KNN(qs[:1024], 8)
	d = mach.Stats().Sub(pre)
	fmt.Printf("8-NN of 1024 queries: %.1f words/query; nearest neighbor of query 0 is point %d\n\n",
		float64(d.Communication)/1024, nn[0][0].ID)

	// Orthogonal range query.
	box := geom.NewBox(geom.Point{0.4, 0.4, 0.4}, geom.Point{0.6, 0.6, 0.6})
	cnt := tree.RangeCount([]geom.Box{box})
	fmt.Printf("range count in [0.4,0.6]^3: %d points (expected ≈ %.0f)\n\n", cnt[0], float64(n)*0.008)

	// Batch-dynamic updates.
	extra := workload.Uniform(10_000, dim, 3)
	batch := make([]core.Item, len(extra))
	for i, p := range extra {
		batch[i] = core.Item{P: p, ID: int32(n + i)}
	}
	pre = mach.Stats()
	tree.BatchInsert(batch)
	d = mach.Stats().Sub(pre)
	fmt.Printf("inserted %d points: %.1f words/op amortized, tree now %d points, height %d\n",
		len(batch), float64(d.Communication)/float64(len(batch)), tree.Size(), tree.Height())
	pre = mach.Stats()
	tree.BatchDelete(batch)
	d = mach.Stats().Sub(pre)
	fmt.Printf("deleted them again: %.1f words/op, tree back to %d points\n\n",
		float64(d.Communication)/float64(len(batch)), tree.Size())

	// Load balance across the whole session.
	work, comm := mach.ModuleLoads()
	fmt.Printf("session load balance (max/mean over %d modules): work %.2f, comm %.2f\n",
		P, pim.MaxLoadRatio(work), pim.MaxLoadRatio(comm))
}
