// Ordered key-value index: the §7 generalization in action — the
// PIM-kd-tree machinery driving a batch-dynamic ordered index (the
// B+-tree/PIM-tree use case), serving point lookups, range scans, and a
// hot-key burst that a range-partitioned index would concentrate on one
// module. The run ends with a durability demo: a child process writes
// acknowledged batches into a WAL-backed store, is SIGKILLed mid-write, and
// the reopened store must contain every acknowledged batch.
//
//	go run ./examples/kvindex
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/persist"
	"pimkd/internal/pim"
	"pimkd/internal/pimindex"
)

func main() {
	childDir := flag.String("durable-child", "", "internal: run as the crash-demo writer in this directory")
	flag.Parse()
	if *childDir != "" {
		runDurableChild(*childDir)
		return
	}
	const (
		nKeys = 300_000
		P     = 64
	)
	mach := pim.NewMachine(P, 1<<22)
	ix := pimindex.New(mach, pimindex.Options{Seed: 7})

	// Bulk-load a key space with collisions (several values per key).
	rng := rand.New(rand.NewSource(1))
	entries := make([]pimindex.Entry, nKeys)
	for i := range entries {
		entries[i] = pimindex.Entry{Key: float64(rng.Intn(nKeys / 4)), Value: int32(i)}
	}
	ix.Build(entries)
	fmt.Printf("ordered index: %d entries over %d modules, height %d, space factor %.2f\n",
		ix.Size(), P, ix.Height(), ix.SpaceFactor())
	fmt.Printf("build cost: %v\n\n", mach.Stats())

	// Batched point lookups.
	keys := make([]float64, 8192)
	for i := range keys {
		keys[i] = float64(rng.Intn(nKeys / 4))
	}
	pre := mach.Stats()
	vals := ix.Lookup(keys)
	d := mach.Stats().Sub(pre)
	hits := 0
	for _, v := range vals {
		if len(v) > 0 {
			hits++
		}
	}
	fmt.Printf("lookup batch: %d keys, %d hit, %.1f words/lookup off-chip\n",
		len(keys), hits, float64(d.Communication)/float64(len(keys)))

	// Range scan.
	scan := ix.RangeScan(1000, 1010)
	fmt.Printf("range scan [1000,1010]: %d entries, first=%v\n\n", len(scan), scan[0])

	// Update churn: delete a key range, insert replacements.
	dead := ix.RangeScan(2000, 2100)
	ix.Delete(dead)
	fresh := make([]pimindex.Entry, len(dead))
	for i := range fresh {
		fresh[i] = pimindex.Entry{Key: 2000 + rng.Float64()*100, Value: int32(1_000_000 + i)}
	}
	ix.Insert(fresh)
	fmt.Printf("churn: replaced %d entries in [2000,2100]; index now %d entries, height %d\n\n",
		len(dead), ix.Size(), ix.Height())

	// Hot-key burst: every client asks for the same key at once.
	mach.ResetStats()
	hotKeys := make([]float64, 8192)
	for i := range hotKeys {
		hotKeys[i] = 1234
	}
	ix.Lookup(hotKeys)
	_, comm := mach.ModuleLoads()
	fmt.Printf("hot-key burst (%d lookups of one key): per-module comm max/mean = %.2f\n",
		len(hotKeys), pim.MaxLoadRatio(comm))
	fmt.Println("(a range-partitioned index would send the whole burst to one module;")
	fmt.Println(" randomized placement + push-pull spread it across the machine)")

	fmt.Println()
	runDurabilityDemo()
}

// --- durability demo: acked writes survive kill -9 -------------------------

const (
	demoP         = 16
	demoBaseKeys  = 20_000
	demoBatchSize = 100
)

func demoTreeConfig() core.Config { return core.Config{Dim: 1, Seed: 7} }

// demoBatch is the deterministic insert batch logged at a given LSN, so the
// parent can recompute exactly what the child acknowledged.
func demoBatch(lsn uint64) []core.Item {
	items := make([]core.Item, demoBatchSize)
	for i := range items {
		items[i] = core.Item{
			P:  geom.Point{1e6 + float64(lsn)*demoBatchSize + float64(i)},
			ID: int32(lsn)*demoBatchSize + int32(i),
		}
	}
	return items
}

// runDurableChild is the crash-demo writer: bulk-load, checkpoint, then log
// and apply insert batches forever, printing "acked <lsn>" after each batch
// is durable AND applied. It never exits on its own — the parent kills it.
func runDurableChild(dir string) {
	mach := pim.NewMachine(demoP, 1<<22)
	st, tree, _, err := persist.Open(dir, persist.Options{
		Machine: mach, Tree: demoTreeConfig(), Fsync: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(1)
	}
	if tree.Size() == 0 {
		// Bulk load bypasses the WAL, so it must be followed by a
		// checkpoint before the first durable write is acknowledged.
		rng := rand.New(rand.NewSource(2))
		base := make([]core.Item, demoBaseKeys)
		for i := range base {
			base[i] = core.Item{P: geom.Point{rng.Float64() * 1e5}, ID: int32(i)}
		}
		tree.Build(base)
		if err := st.Checkpoint(tree); err != nil {
			fmt.Fprintln(os.Stderr, "child checkpoint:", err)
			os.Exit(1)
		}
	}
	for {
		lsn := st.LSN() + 1
		batch := demoBatch(lsn)
		if _, err := st.LogBatch(persist.OpInsert, batch); err != nil {
			fmt.Fprintln(os.Stderr, "child append:", err)
			os.Exit(1)
		}
		tree.BatchInsert(batch)
		fmt.Printf("acked %d\n", lsn)
	}
}

// runDurabilityDemo spawns this binary as a durable writer, SIGKILLs it
// after a few acknowledged batches, reopens the directory, and verifies
// every acknowledged entry is present.
func runDurabilityDemo() {
	fmt.Println("durability demo: acked writes must survive kill -9")
	dir, err := os.MkdirTemp("", "kvindex-durable")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)

	cmd := exec.Command(os.Args[0], "-durable-child", dir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipe:", err)
		return
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "start child:", err)
		return
	}

	// Read acknowledgements until enough batches are durable, then kill the
	// writer without warning — mid-append, as a power cut would.
	var ackedLSN uint64
	sc := bufio.NewScanner(out)
	for sc.Scan() && ackedLSN < 5 {
		line := strings.TrimSpace(sc.Text())
		if n, err := strconv.ParseUint(strings.TrimPrefix(line, "acked "), 10, 64); err == nil {
			ackedLSN = n
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	fmt.Printf("  child acknowledged %d insert batches of %d, then got SIGKILL\n",
		ackedLSN, demoBatchSize)

	// Reopen: the snapshot plus WAL replay must reproduce every batch the
	// child acknowledged; a torn tail (batch logged but not acked) is
	// silently dropped.
	st, tree, rec, err := persist.Open(dir, persist.Options{Machine: pim.NewMachine(demoP, 1<<22)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reopen:", err)
		return
	}
	defer st.Close()
	fmt.Printf("  reopened: snapshot lsn=%d + %d replayed records (torn tail: %v, %d bytes dropped)\n",
		rec.SnapshotLSN, rec.ReplayRecords, rec.TornTail, rec.TornBytes)

	ix := pimindex.Wrap(tree)
	missing := 0
	for lsn := uint64(1); lsn <= ackedLSN; lsn++ {
		batch := demoBatch(lsn)
		keys := make([]float64, len(batch))
		for i, it := range batch {
			keys[i] = it.P[0]
		}
		for i, vals := range ix.Lookup(keys) {
			found := false
			for _, v := range vals {
				if v == batch[i].ID {
					found = true
				}
			}
			if !found {
				missing++
			}
		}
	}
	if missing > 0 || st.LSN() < ackedLSN {
		fmt.Printf("  FAILED: %d acknowledged entries missing after recovery (lsn=%d)\n", missing, st.LSN())
		os.Exit(1)
	}
	fmt.Printf("  verified: all %d acknowledged entries present after recovery; index has %d entries\n",
		int(ackedLSN)*demoBatchSize, ix.Size())
}
