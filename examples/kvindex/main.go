// Ordered key-value index: the §7 generalization in action — the
// PIM-kd-tree machinery driving a batch-dynamic ordered index (the
// B+-tree/PIM-tree use case), serving point lookups, range scans, and a
// hot-key burst that a range-partitioned index would concentrate on one
// module.
//
//	go run ./examples/kvindex
package main

import (
	"fmt"
	"math/rand"

	"pimkd/internal/pim"
	"pimkd/internal/pimindex"
)

func main() {
	const (
		nKeys = 300_000
		P     = 64
	)
	mach := pim.NewMachine(P, 1<<22)
	ix := pimindex.New(mach, pimindex.Options{Seed: 7})

	// Bulk-load a key space with collisions (several values per key).
	rng := rand.New(rand.NewSource(1))
	entries := make([]pimindex.Entry, nKeys)
	for i := range entries {
		entries[i] = pimindex.Entry{Key: float64(rng.Intn(nKeys / 4)), Value: int32(i)}
	}
	ix.Build(entries)
	fmt.Printf("ordered index: %d entries over %d modules, height %d, space factor %.2f\n",
		ix.Size(), P, ix.Height(), ix.SpaceFactor())
	fmt.Printf("build cost: %v\n\n", mach.Stats())

	// Batched point lookups.
	keys := make([]float64, 8192)
	for i := range keys {
		keys[i] = float64(rng.Intn(nKeys / 4))
	}
	pre := mach.Stats()
	vals := ix.Lookup(keys)
	d := mach.Stats().Sub(pre)
	hits := 0
	for _, v := range vals {
		if len(v) > 0 {
			hits++
		}
	}
	fmt.Printf("lookup batch: %d keys, %d hit, %.1f words/lookup off-chip\n",
		len(keys), hits, float64(d.Communication)/float64(len(keys)))

	// Range scan.
	scan := ix.RangeScan(1000, 1010)
	fmt.Printf("range scan [1000,1010]: %d entries, first=%v\n\n", len(scan), scan[0])

	// Update churn: delete a key range, insert replacements.
	dead := ix.RangeScan(2000, 2100)
	ix.Delete(dead)
	fresh := make([]pimindex.Entry, len(dead))
	for i := range fresh {
		fresh[i] = pimindex.Entry{Key: 2000 + rng.Float64()*100, Value: int32(1_000_000 + i)}
	}
	ix.Insert(fresh)
	fmt.Printf("churn: replaced %d entries in [2000,2100]; index now %d entries, height %d\n\n",
		len(dead), ix.Size(), ix.Height())

	// Hot-key burst: every client asks for the same key at once.
	mach.ResetStats()
	hotKeys := make([]float64, 8192)
	for i := range hotKeys {
		hotKeys[i] = 1234
	}
	ix.Lookup(hotKeys)
	_, comm := mach.ModuleLoads()
	fmt.Printf("hot-key burst (%d lookups of one key): per-module comm max/mean = %.2f\n",
		len(hotKeys), pim.MaxLoadRatio(comm))
	fmt.Println("(a range-partitioned index would send the whole burst to one module;")
	fmt.Println(" randomized placement + push-pull spread it across the machine)")
}
