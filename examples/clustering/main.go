// Clustering: run both §6 applications — density peak clustering and 2-D
// DBSCAN — on a synthetic Gaussian mixture with noise, and check how well
// the recovered clusters match the generator's ground truth.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"math/rand"

	"pimkd/internal/cluster"
	"pimkd/internal/geom"
	"pimkd/internal/pim"
)

func main() {
	const (
		nPerCluster = 3000
		kClusters   = 6
		nNoise      = 1500
		P           = 64
	)
	// Generate blobs with known assignment for a ground-truth comparison.
	rng := rand.New(rand.NewSource(5))
	var pts []geom.Point
	var truth []int
	for c := 0; c < kClusters; c++ {
		cx, cy := rng.Float64()*0.8+0.1, rng.Float64()*0.8+0.1
		for i := 0; i < nPerCluster; i++ {
			pts = append(pts, geom.Point{cx + rng.NormFloat64()*0.015, cy + rng.NormFloat64()*0.015})
			truth = append(truth, c)
		}
	}
	for i := 0; i < nNoise; i++ {
		pts = append(pts, geom.Point{rng.Float64(), rng.Float64()})
		truth = append(truth, -1)
	}
	fmt.Printf("dataset: %d points in %d blobs + %d noise\n\n", len(pts), kClusters, nNoise)

	// Density peak clustering.
	machDPC := pim.NewMachine(P, 1<<22)
	dpc := cluster.DPCPIM(machDPC, pts, cluster.DPCParams{DCut: 0.01, Eps: 0.1}, 1)
	major := 0
	sizes := map[int32]int{}
	for _, l := range dpc.Labels {
		sizes[l]++
	}
	for _, sz := range sizes {
		if sz >= 100 {
			major++
		}
	}
	fmt.Printf("DPC (d_cut=0.01, cut=0.1): %d clusters (%d major, rest are noise singletons);"+
		" agreement with truth: %.1f%%\n",
		dpc.NumClusters, major, 100*pairAgreement(dpc.Labels, truth, nil))
	fmt.Printf("  PIM cost: %v\n\n", machDPC.Stats())

	// DBSCAN.
	machDB := pim.NewMachine(P, 1<<22)
	db := cluster.DBSCANPIM(machDB, pts, 0.01, 12)
	noise := 0
	for _, l := range db.Labels {
		if l < 0 {
			noise++
		}
	}
	fmt.Printf("DBSCAN (eps=0.01, minPts=12): %d clusters, %d noise; agreement with truth: %.1f%%\n",
		db.NumClusters, noise, 100*pairAgreement(db.Labels, truth, db.Labels))
	fmt.Printf("  PIM cost: %v\n", machDB.Stats())
	work, comm := machDB.ModuleLoads()
	fmt.Printf("  balance max/mean: work %.2f comm %.2f\n",
		pim.MaxLoadRatio(work), pim.MaxLoadRatio(comm))
}

// pairAgreement estimates the Rand-index-style agreement between a labeling
// and the ground truth over sampled pairs, skipping pairs with a noise
// point when noiseMask is provided.
func pairAgreement(labels []int32, truth []int, noiseMask []int32) float64 {
	rng := rand.New(rand.NewSource(9))
	agree, total := 0, 0
	for t := 0; t < 200000; t++ {
		i, j := rng.Intn(len(labels)), rng.Intn(len(labels))
		if i == j || truth[i] < 0 || truth[j] < 0 {
			continue
		}
		if noiseMask != nil && (noiseMask[i] < 0 || noiseMask[j] < 0) {
			continue
		}
		same := labels[i] == labels[j]
		sameTruth := truth[i] == truth[j]
		if same == sameTruth {
			agree++
		}
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(agree) / float64(total)
}
