// Streaming LiDAR map: the robotics workload the kd-tree literature
// motivates (ikd-tree-style) — a rolling 3-D point-cloud map that absorbs a
// new scan every frame, evicts points that left the sensing window, and
// answers nearest-neighbor collision probes, all in batches on the PIM
// machine.
//
//	go run ./examples/lidar
package main

import (
	"fmt"
	"math"
	"math/rand"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/pim"
)

const (
	scanPoints = 4096 // points per LiDAR frame
	frames     = 30
	window     = 8 // frames kept in the rolling map
	probes     = 1024
	P          = 64
)

func main() {
	mach := pim.NewMachine(P, 1<<22)
	tree := core.New(core.Config{Dim: 3, Seed: 3}, mach)
	rng := rand.New(rand.NewSource(12))

	var frameItems [][]core.Item
	nextID := int32(0)
	var vehicleX float64

	for f := 0; f < frames; f++ {
		vehicleX += 0.05 // the vehicle drives along +x

		// A scan: a disc of points around the vehicle (walls, ground).
		scan := make([]core.Item, scanPoints)
		for i := range scan {
			ang := rng.Float64() * 2 * math.Pi
			r := 0.05 + rng.Float64()*0.2
			scan[i] = core.Item{
				P: geom.Point{
					vehicleX + r*math.Cos(ang),
					0.5 + r*math.Sin(ang),
					rng.Float64() * 0.05,
				},
				ID: nextID,
			}
			nextID++
		}
		tree.BatchInsert(scan)
		frameItems = append(frameItems, scan)

		// Evict the frame that left the window.
		if len(frameItems) > window {
			tree.BatchDelete(frameItems[0])
			frameItems = frameItems[1:]
		}

		// Collision probes: nearest map point for candidate trajectory
		// samples ahead of the vehicle.
		qs := make([]geom.Point, probes)
		for i := range qs {
			qs[i] = geom.Point{
				vehicleX + 0.1 + rng.Float64()*0.1,
				0.45 + rng.Float64()*0.1,
				rng.Float64() * 0.05,
			}
		}
		pre := mach.Stats()
		nn := tree.KNN(qs, 1)
		d := mach.Stats().Sub(pre)

		if f%6 == 5 {
			minD := math.Inf(1)
			for _, r := range nn {
				if len(r) > 0 && r[0].Dist2 < minD {
					minD = r[0].Dist2
				}
			}
			fmt.Printf("frame %2d: map=%6d pts  height=%2d  closest obstacle %.3f  kNN %.1f words/probe\n",
				f, tree.Size(), tree.Height(), math.Sqrt(minD),
				float64(d.Communication)/float64(probes))
		}
	}

	work, comm := mach.ModuleLoads()
	fmt.Printf("\nafter %d frames: %d live points, session balance max/mean work %.2f comm %.2f\n",
		frames, tree.Size(), pim.MaxLoadRatio(work), pim.MaxLoadRatio(comm))
	fmt.Println("the rolling window keeps the tree α-balanced through pure batch inserts/deletes —")
	fmt.Println("no global rebuilds, per the paper's amortized partial-reconstruction scheme.")
}
