// Geospatial index: the motivating low-dimensional workload from the
// paper's introduction — a point-of-interest index serving viewport range
// queries and nearest-POI lookups, under a daily stream of openings and
// closures, including a flash-crowd (adversarially skewed) query burst that
// would melt a space-partitioned index.
//
//	go run ./examples/geospatial
package main

import (
	"fmt"

	"pimkd/internal/core"
	"pimkd/internal/geom"
	"pimkd/internal/pim"
	"pimkd/internal/workload"
)

func main() {
	const (
		nPOI = 150_000
		P    = 64
	)
	// POIs cluster in "cities" with Zipf-skewed popularity (a big capital,
	// many small towns).
	pois := workload.ZipfClusters(nPOI, 2, 40, 0.01, 1.2, 7)
	mach := pim.NewMachine(P, 1<<22)
	idx := core.New(core.Config{Dim: 2, Seed: 11}, mach)
	items := make([]core.Item, len(pois))
	for i, p := range pois {
		items[i] = core.Item{P: p, ID: int32(i)}
	}
	idx.Build(items)
	fmt.Printf("POI index: %d points over %d PIM modules, height %d\n\n", idx.Size(), P, idx.Height())

	// Viewport queries: map tiles of various zoom levels.
	var viewports []geom.Box
	centers := workload.Sample(pois, 2000, 0.02, 13)
	for i, c := range centers {
		side := []float64{0.001, 0.003, 0.01}[i%3]
		viewports = append(viewports, geom.NewBox(
			geom.Point{c[0] - side, c[1] - side},
			geom.Point{c[0] + side, c[1] + side}))
	}
	pre := mach.Stats()
	results := idx.RangeReport(viewports)
	d := mach.Stats().Sub(pre)
	var shown int
	for _, r := range results {
		shown += len(r)
	}
	fmt.Printf("viewport queries: %d tiles, %.1f POIs/tile, %.1f words/query off-chip\n",
		len(viewports), float64(shown)/float64(len(viewports)),
		float64(d.Communication)/float64(len(viewports)))

	// "Nearest coffee": 5-NN around sampled user locations.
	users := workload.Sample(pois, 4096, 0.005, 17)
	pre = mach.Stats()
	nn := idx.KNN(users, 5)
	d = mach.Stats().Sub(pre)
	fmt.Printf("nearest-POI (5-NN) for %d users: %.1f words/query; user 0's closest POI: %d\n\n",
		len(users), float64(d.Communication)/float64(len(users)), nn[0][0].ID)

	// Daily churn: 2%% of POIs close, 2%% open, in batches.
	closures := make([]core.Item, 0, nPOI/50)
	for i := 0; i < nPOI/50; i++ {
		closures = append(closures, items[i*37%len(items)])
	}
	openings := make([]core.Item, len(closures))
	newPois := workload.ZipfClusters(len(closures), 2, 40, 0.01, 1.2, 19)
	for i, p := range newPois {
		openings[i] = core.Item{P: p, ID: int32(nPOI + i)}
	}
	pre = mach.Stats()
	idx.BatchDelete(closures)
	idx.BatchInsert(openings)
	d = mach.Stats().Sub(pre)
	fmt.Printf("daily churn (%d closures + %d openings): %.1f words/op amortized, height still %d\n\n",
		len(closures), len(openings), float64(d.Communication)/float64(2*len(closures)), idx.Height())

	// Flash crowd: everyone searches the same block at once.
	burst := workload.Hotspot(8192, 2, 0.0005, 23)
	mach.ResetStats()
	idx.LeafSearch(burst)
	_, comm := mach.ModuleLoads()
	fmt.Printf("flash-crowd burst of %d queries on one city block: per-module comm max/mean = %.2f\n",
		len(burst), pim.MaxLoadRatio(comm))
	fmt.Println("(randomized placement + push-pull keep the burst spread across the machine —")
	fmt.Println(" a space-partitioned index would put all of it on one module)")
}
