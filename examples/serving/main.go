// The serving example demonstrates the deployment shape the serving layer
// exists for: many independent clients issue *singleton* kNN queries over
// HTTP, and the batch coalescer turns them into the well-formed batches the
// paper's bounds are stated for — observable as a mean batch size well
// above 1 and a per-request communication cost tracking the O(k log* P)
// batch bound, not a per-client penalty.
//
// By default the example starts an in-process server on a loopback port,
// drives it with -clients concurrent clients of -requests queries each, and
// then reads /statsz back. Point -target at the base URL of a running
// pimkd-server — or a pimkd-router fronting a whole cluster — to load an
// external instance instead (-addr host:port remains as a shorthand).
//
// With -open-loop the closed-loop clients are replaced by the open-loop
// generator from internal/load: arrivals come from a Poisson schedule at
// -rate req/s that never waits for responses, and latency is measured from
// each request's scheduled arrival — the measurement regime where overload
// is visible instead of hidden (see internal/load's package comment on
// coordinated omission).
//
//	go run ./examples/serving
//	go run ./examples/serving -clients 64 -requests 100 -max-batch 128
//	go run ./examples/serving -target http://localhost:8080 -clients 64
//	go run ./examples/serving -open-loop -rate 800 -duration 5s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"pimkd/internal/core"
	"pimkd/internal/load"
	"pimkd/internal/mathx"
	"pimkd/internal/pim"
	"pimkd/internal/serve"
	"pimkd/internal/shard"
	"pimkd/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server address (empty = start one in-process)")
		target   = flag.String("target", "", "target base URL (e.g. http://host:8080) of a pimkd-server or pimkd-router; overrides -addr")
		clients  = flag.Int("clients", 32, "concurrent client goroutines")
		requests = flag.Int("requests", 100, "requests per client")
		n        = flag.Int("n", 1<<15, "points indexed by the in-process server")
		dim      = flag.Int("dim", 2, "point dimension")
		p        = flag.Int("p", 64, "PIM modules of the in-process server")
		k        = flag.Int("k", 8, "neighbors per query")
		seed     = flag.Int64("seed", 1, "seed for dataset, service, and client query streams")
		maxBatch = flag.Int("max-batch", 256, "coalescing batch cap S of the in-process server")
		linger   = flag.Duration("linger", 2*time.Millisecond, "linger of the in-process server")
		openLoop = flag.Bool("open-loop", false, "drive with the open-loop generator (internal/load) instead of closed-loop clients")
		rate     = flag.Float64("rate", 500, "with -open-loop: Poisson arrival rate, requests/second")
		duration = flag.Duration("duration", 5*time.Second, "with -open-loop: run length")
		mix      = flag.String("mix", "knn=1", "with -open-loop: request mix as kind=weight,...")
	)
	flag.Parse()

	var url string
	switch {
	case *target != "":
		url = strings.TrimRight(*target, "/")
	case *addr != "":
		url = "http://" + *addr
	default:
		base, stop := startServer(*n, *dim, *p, *seed, *maxBatch, *linger)
		defer stop()
		url = "http://" + base
	}

	if *openLoop {
		runOpenLoop(url, *mix, *rate, *duration, *dim, *k, *seed)
		printStats(url)
		return
	}

	// Each client owns a deterministic query stream derived from the seed,
	// so the whole load run is replayable.
	type clientStat struct {
		requests   int
		sumBatch   int64
		commWords  int64
		batched    int64 // responses carrying single-server batch info
		sumQueried int64 // responses carrying router fanout info
		sumPruned  int64
		fanned     int64
	}
	stats := make([]clientStat, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)*1009))
			for i := 0; i < *requests; i++ {
				q := make([]float64, *dim)
				for d := range q {
					q[d] = rng.Float64()
				}
				point := fmt.Sprintf("%g", q[0])
				for _, v := range q[1:] {
					point += fmt.Sprintf(",%g", v)
				}
				resp, err := http.Get(fmt.Sprintf("%s/knn?p=%s&k=%d", url, point, *k))
				if err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
				// A pimkd-server reply carries "batch" (coalescing info); a
				// pimkd-router reply carries "fanout" (scatter info). Accept
				// either so one load generator drives both.
				var body struct {
					Neighbors []serve.Neighbor `json:"neighbors"`
					Batch     *serve.BatchInfo `json:"batch"`
					Fanout    *shard.Fanout    `json:"fanout"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					log.Printf("client %d decode: %v", c, err)
					return
				}
				stats[c].requests++
				if body.Batch != nil && body.Batch.Size > 0 {
					stats[c].batched++
					stats[c].sumBatch += int64(body.Batch.Size)
					stats[c].commWords += body.Batch.Cost.Communication / int64(body.Batch.Size)
				}
				if body.Fanout != nil {
					stats[c].fanned++
					stats[c].sumQueried += int64(body.Fanout.Queried)
					stats[c].sumPruned += int64(body.Fanout.Pruned)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total, sumBatch, comm, batched, fanned, queried, pruned int64
	for _, st := range stats {
		total += int64(st.requests)
		sumBatch += st.sumBatch
		comm += st.commWords
		batched += st.batched
		fanned += st.fanned
		queried += st.sumQueried
		pruned += st.sumPruned
	}
	if total == 0 {
		log.Fatal("no request succeeded")
	}
	fmt.Printf("drove %d singleton kNN queries (k=%d) from %d clients in %v → %.0f req/s\n",
		total, *k, *clients, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	if batched > 0 {
		fmt.Printf("client-observed mean batch size: %.1f (coalescing turns singletons into batches)\n",
			float64(sumBatch)/float64(batched))
		fmt.Printf("client-observed comm/request:    %.1f words (paper: O(k·log*P) = O(%d·%d) shape per query)\n",
			float64(comm)/float64(batched), *k, mathx.LogStar(float64(*p)))
	}
	if fanned > 0 {
		fmt.Printf("router fanout: mean %.2f shards queried, %.2f pruned per query\n",
			float64(queried)/float64(fanned), float64(pruned)/float64(fanned))
	}

	printStats(url)
}

// runOpenLoop drives the target with the open-loop generator and prints
// its per-kind latency table.
func runOpenLoop(url, mix string, rate float64, duration time.Duration, dim, k int, seed int64) {
	target := &load.HTTPTarget{Base: url, Dim: dim, K: k}
	ops, err := target.Mix(mix)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := load.NewPoisson([]load.Phase{{Rate: rate, Duration: duration}}, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open-loop: Poisson arrivals at %g/s for %v (latency from scheduled arrival)\n", rate, duration)
	res, err := load.Run(context.Background(), load.Config{Ops: ops, Schedule: sched, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
}

// printStats decodes /statsz as whichever shape the target speaks — the
// single-server snapshot or the router's.
func printStats(url string) {
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		log.Fatal(err)
	}
	var rsnap shard.MetricsSnapshot
	if err := json.Unmarshal(raw, &rsnap); err == nil && rsnap.TotalShards > 0 {
		fmt.Printf("\n/statsz (router): %d knn requests, %d shard calls, %d pruned visits, %d hedges, %d degraded\n",
			rsnap.KNNRequests, rsnap.ShardCalls, rsnap.Pruned, rsnap.Hedges, rsnap.Degraded)
		fmt.Printf("  %d/%d shards healthy, %d points, wire %d B out / %d B in\n",
			rsnap.HealthyShards, rsnap.TotalShards, rsnap.TotalPoints, rsnap.WireBytesOut, rsnap.WireBytesIn)
		return
	}
	var snap serve.MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/statsz: %d requests, %d batches, mean batch %.1f, %d epochs\n",
		snap.TotalRequests, snap.TotalBatches, snap.MeanBatchSize, snap.Epochs)
	for _, ks := range snap.Kinds {
		fmt.Printf("  %-7s mean batch %.1f  comm/req %.1f words  pimTime/req %.1f  comm balance %.2f\n",
			ks.Kind, ks.MeanBatchSize, ks.CommPerRequest, ks.PIMTimePerRequest, ks.MeanCommBalance)
	}
	for _, ks := range snap.Kinds {
		if ks.LatencyCount > 0 {
			fmt.Printf("  %-7s server-side latency  p50 %.0fµs  p99 %.0fµs  p999 %.0fµs  max %.0fµs\n",
				ks.Kind, ks.P50US, ks.P99US, ks.P999US, ks.MaxUS)
		}
	}
}

// startServer builds a tree and serves it on a loopback port, returning the
// address and a shutdown func.
func startServer(n, dim, p int, seed int64, maxBatch int, linger time.Duration) (string, func()) {
	mach := pim.NewMachine(p, 1<<22)
	tree := core.New(core.Config{Dim: dim, Seed: seed}, mach)
	pts := workload.Uniform(n, dim, seed)
	items := make([]core.Item, len(pts))
	for i, pt := range pts {
		items[i] = core.Item{P: pt, ID: int32(i)}
	}
	tree.Build(items)
	svc := serve.New(serve.Config{MaxBatch: maxBatch, MaxLinger: linger, Seed: seed}, tree)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: serve.NewHandler(svc)}
	go func() { _ = server.Serve(ln) }()
	log.Printf("in-process server on %s (n=%d, P=%d, S=%d, linger=%v)", ln.Addr(), n, p, maxBatch, linger)
	return ln.Addr().String(), func() {
		_ = server.Close()
		_ = svc.Close()
	}
}
