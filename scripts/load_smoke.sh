#!/usr/bin/env bash
# Load smoke test: boot 2 durable shards behind a router, drive the whole
# front door with the open-loop generator (pimkd-load) at roughly 2x the
# little cluster's capacity, and assert:
#
#   summary  — the pimkd-bench/v1 JSON record parses, carries per-kind
#              latency histograms with nonzero counts and ordered
#              p50 <= p99 <= p999, and reports zero hard errors (sheds are
#              legitimate overload outcomes; errors are not).
#   durable  — every write the cluster acked after the storm is readable:
#              zero lost acked updates.
#
# Used by the ci load-smoke job; runs standalone with no arguments.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="$(mktemp -d)"
BIN="$WORK/bin"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  for _ in $(seq 50); do
    local live=0
    for pid in "${PIDS[@]:-}"; do
      kill -0 "$pid" 2>/dev/null && live=1
    done
    [ "$live" = 0 ] && break
    sleep 0.1
  done
  rm -rf "$WORK" 2>/dev/null || true
}
trap cleanup EXIT

log() { echo "[load-smoke] $*"; }
fail() {
  log "FAIL: $*"
  for f in "$WORK"/*.log; do
    echo "--- $f"
    tail -20 "$f"
  done
  exit 1
}

HTTP_BASE=18180 # router on :18180, shard i HTTP on :1818i
WIRE_BASE=19180 # shard i wire protocol on :1918i
ROUTER="http://127.0.0.1:$HTTP_BASE"

wait_http() { # url grep-pattern [timeout-seconds]
  local url="$1" pattern="$2" deadline=$(($(date +%s) + ${3:-30}))
  while true; do
    if curl -fsS --max-time 2 "$url" 2>/dev/null | grep -q "$pattern"; then
      return 0
    fi
    if [ "$(date +%s)" -ge "$deadline" ]; then
      fail "timeout waiting for $url to match '$pattern'"
    fi
    sleep 0.2
  done
}

log "building pimkd-server, pimkd-router, pimkd-load"
go build -o "$BIN/" ./cmd/pimkd-server ./cmd/pimkd-router ./cmd/pimkd-load

log "booting 2 durable shards"
for i in 1 2; do
  "$BIN/pimkd-server" \
    -addr "127.0.0.1:$((HTTP_BASE + i))" \
    -shard-addr "127.0.0.1:$((WIRE_BASE + i))" \
    -data-dir "$WORK/shard$i" \
    -n 0 -p 16 -max-batch 64 -linger 1ms \
    >"$WORK/shard$i.log" 2>&1 &
  PIDS+=($!)
  disown
done
for i in 1 2; do
  wait_http "http://127.0.0.1:$((HTTP_BASE + i))/readyz" ok
done

log "booting router"
"$BIN/pimkd-router" -addr "127.0.0.1:$HTTP_BASE" \
  -shards "127.0.0.1:$((WIRE_BASE + 1)),127.0.0.1:$((WIRE_BASE + 2))" \
  -timeout 2s -probe-interval 100ms \
  >"$WORK/router.log" 2>&1 &
PIDS+=($!)
disown
wait_http "$ROUTER/shardz" '"healthy": *2'
log "router up, 2/2 shards healthy"

# Seed some data so reads have something to chew on.
log "seeding 50 points"
for i in $(seq 0 49); do
  read -r x y <<<"$(awk -v i="$i" 'BEGIN{printf "%.4f %.4f", (i%10)/10+0.05, (int(i/10)%5)/5+0.1}')"
  code="$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 -X POST "$ROUTER/insert?id=$i&p=$x,$y")"
  [ "$code" = 200 ] || fail "seed insert $i returned $code"
done

# The storm: open-loop Poisson arrivals across every request kind at a
# rate around 2x what this two-shard loopback cluster sustains, captured
# as a pimkd-bench/v1 JSON record.
SUMMARY="$WORK/load.json"
log "open-loop storm: 400/s for 6s across all request kinds"
"$BIN/pimkd-load" -target "$ROUTER" -wait-healthy 10s \
  -rate 400 -duration 6s -shape flat -seed 42 \
  -json "$SUMMARY" >"$WORK/load.log" 2>&1 || fail "pimkd-load exited nonzero"
cat "$WORK/load.log"

log "checking the JSON summary"
python3 - "$SUMMARY" <<'EOF' || fail "summary check failed"
import json, sys
rec = json.load(open(sys.argv[1]))
assert rec["schema"] == "pimkd-bench/v1", rec["schema"]
exp = rec["experiments"][0]
assert exp["id"] == "load", exp["id"]
m = exp["metrics"]
assert m["offered"] > 0, "no arrivals offered"
kinds = sorted({k.split("_")[0] for k in m if k.endswith("_done")})
assert kinds, "no per-kind results"
sampled = 0
for kind in kinds:
    assert m.get(f"{kind}_errors", 0) == 0, f"{kind}: hard errors in summary"
    done = m.get(f"{kind}_done", 0)
    if done > 0 and f"{kind}_p50_us" in m:
        p50, p99, p999 = m[f"{kind}_p50_us"], m[f"{kind}_p99_us"], m[f"{kind}_p999_us"]
        assert 0 < p50 <= p99 <= p999, f"{kind}: bad quantiles {p50} {p99} {p999}"
        sampled += 1
assert sampled >= 4, f"only {sampled} kinds carry latency histograms"
print(f"summary ok: {int(m['offered'])} offered over kinds {kinds}, {sampled} nonzero histograms")
EOF

log "verifying zero lost acked updates after the storm"
ACKED="$WORK/acked.txt"
: >"$ACKED"
for i in $(seq 500 539); do
  read -r x y <<<"$(awk -v i="$i" 'BEGIN{srand(i); printf "%.4f %.4f", rand(), rand()}')"
  code="$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 -X POST "$ROUTER/insert?id=$i&p=$x,$y")"
  if [ "$code" = 200 ]; then echo "$i" >>"$ACKED"; fi
done
[ -s "$ACKED" ] || fail "no post-storm insert was acked by a healthy cluster"
curl -fsS "$ROUTER/range?lo=0,0&hi=1,1" >"$WORK/final.json"
grep -o '"id": *[0-9]*' "$WORK/final.json" | grep -o '[0-9]*$' | sort -u >"$WORK/got.txt"
missing="$(comm -23 <(sort -u "$ACKED") "$WORK/got.txt")"
[ -z "$missing" ] || fail "acked updates missing after the storm: $missing"
log "$(wc -l <"$ACKED") acked updates all present"

# The router's latency mirror must now expose per-kind quantiles too.
curl -fsS "$ROUTER/shardz" | grep -q '"cluster_latency"' || fail "/shardz missing cluster_latency"
log "PASS: open-loop storm measured, summary JSON sound, zero lost acked updates"
