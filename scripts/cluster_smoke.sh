#!/usr/bin/env bash
# Cluster smoke test: boot 3 durable shards behind a router, run a mixed
# workload, kill -9 one shard mid-run, and assert the failure semantics the
# router promises:
#
#   degrade   — the router sheds the dead shard; answers that would need it
#               are refused (503), never served partially; inserts whose
#               owner is down are refused, never acked.
#   recover   — the restarted shard (same data dir) is reinstated by the
#               health prober, cluster-wide queries work again, and every
#               acked update is present: zero lost acked updates.
#
# Used by the ci cluster-smoke job; runs standalone with no arguments.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="$(mktemp -d)"
BIN="$WORK/bin"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  # The processes are disowned, so poll them down instead of `wait` before
  # removing the directory they log into.
  for _ in $(seq 50); do
    local live=0
    for pid in "${PIDS[@]:-}"; do
      kill -0 "$pid" 2>/dev/null && live=1
    done
    [ "$live" = 0 ] && break
    sleep 0.1
  done
  rm -rf "$WORK" 2>/dev/null || true
}
trap cleanup EXIT

log() { echo "[cluster-smoke] $*"; }
fail() {
  log "FAIL: $*"
  for f in "$WORK"/*.log; do
    echo "--- $f"
    tail -20 "$f"
  done
  exit 1
}

HTTP_BASE=18080 # router on :18080, shard i HTTP on :1808i
WIRE_BASE=19080 # shard i wire protocol on :1908i
ROUTER="http://127.0.0.1:$HTTP_BASE"

status_of() { curl -s -o /dev/null -w '%{http_code}' --max-time 10 "$@"; }

wait_http() { # url grep-pattern [timeout-seconds]
  local url="$1" pattern="$2" deadline=$(($(date +%s) + ${3:-30}))
  while true; do
    if curl -fsS --max-time 2 "$url" 2>/dev/null | grep -q "$pattern"; then
      return 0
    fi
    if [ "$(date +%s)" -ge "$deadline" ]; then
      fail "timeout waiting for $url to match '$pattern'"
    fi
    sleep 0.2
  done
}

log "building pimkd-server and pimkd-router"
go build -o "$BIN/" ./cmd/pimkd-server ./cmd/pimkd-router

start_shard() { # index (1..3)
  local i="$1"
  "$BIN/pimkd-server" \
    -addr "127.0.0.1:$((HTTP_BASE + i))" \
    -shard-addr "127.0.0.1:$((WIRE_BASE + i))" \
    -data-dir "$WORK/shard$i" \
    -n 0 -p 16 -max-batch 64 -linger 1ms \
    >>"$WORK/shard$i.log" 2>&1 &
  PIDS+=($!)
  eval "SHARD${i}_PID=$!"
  disown # no job-control noise when the chaos phase kills it
}

log "booting 3 shards"
for i in 1 2 3; do start_shard "$i"; done
for i in 1 2 3; do
  wait_http "http://127.0.0.1:$((HTTP_BASE + i))/readyz" ok
done

log "booting router"
"$BIN/pimkd-router" -addr "127.0.0.1:$HTTP_BASE" \
  -shards "127.0.0.1:$((WIRE_BASE + 1)),127.0.0.1:$((WIRE_BASE + 2)),127.0.0.1:$((WIRE_BASE + 3))" \
  -timeout 2s -probe-interval 100ms -fail-threshold 2 \
  >"$WORK/router.log" 2>&1 &
PIDS+=($!)
disown
wait_http "$ROUTER/shardz" '"healthy": *3'
log "router up, 3/3 shards healthy"

ACKED="$WORK/acked.txt"
REFUSED="$WORK/refused.txt"
: >"$ACKED"
: >"$REFUSED"
insert_point() { # id x y — records the id as acked (200) or refused
  local code
  code="$(status_of -X POST "$ROUTER/insert?id=$1&p=$2,$3")"
  if [ "$code" = 200 ]; then
    echo "$1" >>"$ACKED"
    return 0
  fi
  echo "$1" >>"$REFUSED"
  return 1
}
grid_xy() { # id → "x y" on a 10×6 grid spanning every partition cell
  awk -v i="$1" 'BEGIN{printf "%.4f %.4f", (i%10)/10+0.05, (int(i/10)%6)/6+0.08}'
}

log "phase 1: 60 inserts through the router (healthy cluster: all must ack)"
for i in $(seq 0 59); do
  read -r x y <<<"$(grid_xy "$i")"
  insert_point "$i" "$x" "$y" || fail "insert $i refused while every shard is healthy"
done

log "phase 1: read workload through the router (load generator, -target)"
go run ./examples/serving -target "$ROUTER" -clients 4 -requests 15 -k 4 >"$WORK/load1.log" 2>&1 ||
  fail "load generator against healthy cluster"
grep -q "router fanout" "$WORK/load1.log" || fail "load generator saw no router fanout info"

log "killing shard 2 (kill -9) mid-run"
kill -9 "$SHARD2_PID"
wait_http "$ROUTER/shardz" '"healthy": *2'
log "router shed the dead shard (2/3 healthy)"

# A kNN that needs every point cannot be answered exactly without shard 2:
# it must be refused outright, not silently truncated.
code="$(status_of "$ROUTER/knn?p=0.5,0.5&k=100000")"
[ "$code" = 503 ] || fail "cluster-wide kNN while degraded returned $code, want 503"
code="$(status_of "$ROUTER/range?lo=0,0&hi=1,1")"
[ "$code" = 503 ] || fail "full-box range while degraded returned $code, want 503"
log "degraded reads refused with 503 (no partial answers)"

log "phase 2: 30 inserts during the outage (dead-owner inserts must be refused)"
for i in $(seq 100 129); do
  read -r x y <<<"$(grid_xy "$i")"
  insert_point "$i" "$x" "$y" || true
done
refused_count="$(wc -l <"$REFUSED")"
[ "$refused_count" -gt 0 ] || fail "no insert was refused while a shard was down"
log "phase 2: $refused_count/30 refused (dead owner), $((30 - refused_count)) acked on live shards"

log "restarting shard 2 from its data dir"
start_shard 2
wait_http "http://127.0.0.1:$((HTTP_BASE + 2))/readyz" ok
wait_http "$ROUTER/shardz" '"healthy": *3'
log "router reinstated the recovered shard (3/3 healthy)"

code="$(status_of "$ROUTER/knn?p=0.5,0.5&k=100000")"
[ "$code" = 200 ] || fail "cluster-wide kNN after recovery returned $code, want 200"

log "verifying zero lost acked updates"
curl -fsS "$ROUTER/range?lo=0,0&hi=1,1" >"$WORK/final.json"
grep -o '"id": *[0-9]*' "$WORK/final.json" | grep -o '[0-9]*$' | sort -u >"$WORK/got.txt"
sort -u "$ACKED" >"$WORK/want.txt"
missing="$(comm -23 "$WORK/want.txt" "$WORK/got.txt")"
[ -z "$missing" ] || fail "acked updates lost across the kill/restart: $missing"
leaked="$(comm -12 <(sort -u "$REFUSED") "$WORK/got.txt")"
[ -z "$leaked" ] || fail "refused (never-acked) inserts present after recovery: $leaked"

log "read workload against the recovered cluster"
go run ./examples/serving -target "$ROUTER" -clients 4 -requests 10 -k 4 >"$WORK/load2.log" 2>&1 ||
  fail "load generator against recovered cluster"

log "PASS: degrade observed, shard reinstated, zero lost acked updates"
