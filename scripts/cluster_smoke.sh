#!/usr/bin/env bash
# Cluster smoke test for the replicated cluster (replication factor 2):
# boot 3 durable shards (each running the peer Rebuilder) behind a router,
# run a mixed workload, and assert the failure semantics the replicated
# router promises:
#
#   failover  — kill -9 a shard mid-run: every cell still has a healthy
#               replica, so reads stay exact (200, never partial) and
#               writes KEEP flowing, acked by the surviving replica; the
#               router records failovers and fences the dead shard stale.
#   resync    — the restarted shard (same data dir) recovers its WAL, is
#               nudged by the router to resync the writes it missed, and
#               is only routed reads again once back in sync. Zero acked
#               updates lost.
#   rebuild   — kill a shard and WIPE its data dir: the restart streams
#               its cells back from peer replicas over the wire (peer
#               rebuild) and flips /readyz only once caught up. Zero
#               acked updates lost.
#   sweep     — delete one replicated point directly on its secondary
#               replica, behind the router's back (no missed ack, so the
#               write-path fence can never fire): the anti-entropy
#               checksum sweep must detect the divergence, evidenced-fence
#               the corrupted replica, and repair it back to bit-identical
#               via peer rebuild. Zero acked updates lost.
#   rebalance — hot-spot ingest overloads one cell's hosts past the drift
#               threshold; the router (restarted with -rebalance-interval)
#               automatically splits the hot cell and live-migrates the
#               moving half (placement epoch advances), commit-window 503s
#               are retried per Retry-After, per-shard drift returns under
#               the threshold, and zero acked updates are lost.
#
# Used by the ci cluster-smoke job; runs standalone with no arguments.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="$(mktemp -d)"
BIN="$WORK/bin"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  # The processes are disowned, so poll them down instead of `wait` before
  # removing the directory they log into.
  for _ in $(seq 50); do
    local live=0
    for pid in "${PIDS[@]:-}"; do
      kill -0 "$pid" 2>/dev/null && live=1
    done
    [ "$live" = 0 ] && break
    sleep 0.1
  done
  rm -rf "$WORK" 2>/dev/null || true
}
trap cleanup EXIT

log() { echo "[cluster-smoke] $*"; }
fail() {
  log "FAIL: $*"
  for f in "$WORK"/*.log; do
    echo "--- $f"
    tail -20 "$f"
  done
  exit 1
}

HTTP_BASE=18080 # router on :18080, shard i HTTP on :1808i
WIRE_BASE=19080 # shard i wire protocol on :1908i
ROUTER="http://127.0.0.1:$HTTP_BASE"
PEERS="127.0.0.1:$((WIRE_BASE + 1)),127.0.0.1:$((WIRE_BASE + 2)),127.0.0.1:$((WIRE_BASE + 3))"

status_of() { curl -s -o /dev/null -w '%{http_code}' --max-time 10 "$@"; }

wait_http() { # url grep-pattern [timeout-seconds]
  local url="$1" pattern="$2" deadline=$(($(date +%s) + ${3:-30}))
  while true; do
    if curl -fsS --max-time 2 "$url" 2>/dev/null | grep -q "$pattern"; then
      return 0
    fi
    if [ "$(date +%s)" -ge "$deadline" ]; then
      fail "timeout waiting for $url to match '$pattern'"
    fi
    sleep 0.2
  done
}

wait_synced() { # wait until the router reports every shard healthy and in sync
  wait_http "$ROUTER/statsz" '"healthy_shards": *3'
  wait_http "$ROUTER/statsz" '"synced_shards": *3'
  wait_http "$ROUTER/statsz" '"stale_shards": *0'
}

log "building pimkd-server and pimkd-router"
go build -o "$BIN/" ./cmd/pimkd-server ./cmd/pimkd-router

start_shard() { # index (1..3)
  local i="$1"
  "$BIN/pimkd-server" \
    -addr "127.0.0.1:$((HTTP_BASE + i))" \
    -shard-addr "127.0.0.1:$((WIRE_BASE + i))" \
    -cluster-self "$((i - 1))" -cluster-peers "$PEERS" \
    -rebuild-patience 2s \
    -data-dir "$WORK/shard$i" \
    -n 0 -p 16 -max-batch 64 -linger 1ms \
    >>"$WORK/shard$i.log" 2>&1 &
  PIDS+=($!)
  eval "SHARD${i}_PID=$!"
  disown # no job-control noise when the chaos phase kills it
}

log "booting 3 replicated shards (replication factor 2)"
for i in 1 2 3; do start_shard "$i"; done
for i in 1 2 3; do
  # /readyz holds 503 until the peer rebuild settles (a cold cluster boot
  # converges to empty local state after the rebuild patience window).
  wait_http "http://127.0.0.1:$((HTTP_BASE + i))/readyz" ok
done

log "booting router"
"$BIN/pimkd-router" -addr "127.0.0.1:$HTTP_BASE" \
  -shards "$PEERS" \
  -timeout 2s -probe-interval 100ms -fail-threshold 2 \
  -sweep-interval 500ms -sweep-settle 200ms \
  >"$WORK/router.log" 2>&1 &
PIDS+=($!)
ROUTER_PID=$!
disown
wait_http "$ROUTER/shardz" '"healthy": *3'
wait_synced
log "router up, 3/3 shards healthy and in sync"

ACKED="$WORK/acked.txt"
: >"$ACKED"
insert_point() { # id x y — records the id as acked (200)
  local code
  code="$(status_of -X POST "$ROUTER/insert?id=$1&p=$2,$3")"
  if [ "$code" = 200 ]; then
    echo "$1" >>"$ACKED"
    return 0
  fi
  return 1
}
grid_xy() { # id → "x y" on a 10×6 grid spanning every partition cell
  awk -v i="$1" 'BEGIN{printf "%.4f %.4f", (i%10)/10+0.05, (int(i/10)%6)/6+0.08}'
}

log "phase 1: 60 inserts through the router (healthy cluster: all must ack)"
for i in $(seq 0 59); do
  read -r x y <<<"$(grid_xy "$i")"
  insert_point "$i" "$x" "$y" || fail "insert $i refused while every shard is healthy"
done

log "phase 1: read workload through the router (load generator, -target)"
go run ./examples/serving -target "$ROUTER" -clients 4 -requests 15 -k 4 >"$WORK/load1.log" 2>&1 ||
  fail "load generator against healthy cluster"
grep -q "router fanout" "$WORK/load1.log" || fail "load generator saw no router fanout info"

log "scenario A: killing shard 2 (kill -9) mid-run — failover, not refusal"
kill -9 "$SHARD2_PID"
wait_http "$ROUTER/shardz" '"healthy": *2'
log "router shed the dead shard (2/3 healthy)"

# Every cell shard 2 hosted has a replica on a surviving shard, so exact
# cluster-wide reads must still be served (with replication 1 these were
# refused with 503).
code="$(status_of "$ROUTER/knn?p=0.5,0.5&k=100000")"
[ "$code" = 200 ] || fail "cluster-wide kNN during single-shard outage returned $code, want 200 (failover)"
code="$(status_of "$ROUTER/range?lo=0,0&hi=1,1")"
[ "$code" = 200 ] || fail "full-box range during single-shard outage returned $code, want 200 (failover)"
log "exact reads served through replica failover"

log "scenario A: 30 inserts during the outage (all must ack via failover)"
for i in $(seq 100 129); do
  read -r x y <<<"$(grid_xy "$i")"
  insert_point "$i" "$x" "$y" || fail "insert $i refused during single-shard outage (failover write)"
done
curl -fsS "$ROUTER/statsz" | grep -q '"failovers": *[1-9]' ||
  fail "router recorded no failovers despite writes landing on dead-primary cells"
curl -fsS "$ROUTER/statsz" | grep -q '"stale_marks": *[1-9]' ||
  fail "router never fenced the dead shard stale despite it missing acked writes"
log "failover writes acked, dead shard fenced stale"

log "scenario A: restarting shard 2 from its data dir (WAL recovery + resync)"
start_shard 2
wait_http "http://127.0.0.1:$((HTTP_BASE + 2))/readyz" ok
wait_synced
curl -fsS "$ROUTER/statsz" | grep -q '"resync_nudges": *[1-9]' ||
  fail "router never nudged the revived shard to resync"
log "router reinstated and resynced the recovered shard (3/3 healthy, in sync)"

verify_acked() { # label — every acked id must be present in a full-box range
  curl -fsS "$ROUTER/range?lo=0,0&hi=1,1" >"$WORK/final.json"
  grep -o '"id": *[0-9]*' "$WORK/final.json" | grep -o '[0-9]*$' | sort -u >"$WORK/got.txt"
  sort -u "$ACKED" >"$WORK/want.txt"
  missing="$(comm -23 "$WORK/want.txt" "$WORK/got.txt")"
  [ -z "$missing" ] || fail "acked updates lost ($1): $missing"
}

log "verifying zero lost acked updates after kill/restart"
verify_acked "kill -9 + restart"

log "scenario B: killing shard 3 and WIPING its data dir — peer rebuild"
kill -9 "$SHARD3_PID"
wait_http "$ROUTER/shardz" '"healthy": *2'
log "scenario B: 20 inserts while shard 3 is down (must ack via failover)"
for i in $(seq 200 219); do
  read -r x y <<<"$(grid_xy "$i")"
  insert_point "$i" "$x" "$y" || fail "insert $i refused during shard-3 outage"
done
rm -rf "$WORK/shard3"
log "data dir wiped; restarting shard 3 with nothing but its peers"
start_shard 3
# /readyz must flip only once the peer rebuild has streamed the cells back.
wait_http "http://127.0.0.1:$((HTTP_BASE + 3))/readyz" ok
grep -q "rebuild converged" "$WORK/shard3.log" ||
  fail "restarted shard 3 never logged a converged peer rebuild"
wait_synced
log "shard 3 rebuilt from peers and rejoined in sync"

log "verifying zero lost acked updates after data-dir wipe + peer rebuild"
verify_acked "wipe + peer rebuild"

log "scenario C: silent corruption behind the router — anti-entropy sweep"
# Placement puts cell c on shards (c, c+1 mod 3): shard 1 (self 0) hosts
# cells 0,2 and shard 2 (self 1) hosts cells 1,0, so a point present on
# both lives in cell 0, whose placement-first replica is shard 1. Deleting
# it from shard 2 corrupts the MINORITY copy (an R=2 checksum tie breaks
# to the placement-first holder, so corrupting shard 1 would win the vote
# — the documented residual risk of two-way replication).
shard_ids() { # index → sorted ids the shard holds locally
  curl -fsS "http://127.0.0.1:$((HTTP_BASE + $1))/range?lo=0,0&hi=1,1" |
    grep -o '"id": *[0-9]*' | grep -o '[0-9]*$' | sort -u
}
shard_ids 1 >"$WORK/s1.ids"
shard_ids 2 >"$WORK/s2.ids"
CORRUPT_ID="$(comm -12 "$WORK/s1.ids" "$WORK/s2.ids" | head -1)"
[ -n "$CORRUPT_ID" ] || fail "no point replicated on shards 1+2 (cell 0) to corrupt"
read -r cx cy <<<"$(grid_xy "$CORRUPT_ID")"
code="$(status_of -X POST "http://127.0.0.1:$((HTTP_BASE + 2))/delete?id=$CORRUPT_ID&p=$cx,$cy")"
[ "$code" = 200 ] || fail "behind-the-router delete on shard 2 returned $code"
log "point $CORRUPT_ID deleted on shard 2 only; the router saw no missed ack — waiting for the sweep"
wait_http "$ROUTER/statsz" '"sweep_mismatches": *[1-9]' 60
log "sweep evidenced-fenced the divergent replica; waiting for peer-rebuild repair"
wait_synced
shard_ids 2 >"$WORK/s2.after"
grep -qx "$CORRUPT_ID" "$WORK/s2.after" ||
  fail "repaired shard 2 is still missing point $CORRUPT_ID (not repaired to identical)"
log "divergent replica repaired to identical (point $CORRUPT_ID restored)"

log "verifying zero lost acked updates after sweep detect + repair"
verify_acked "sweep detect + repair"

log "read workload against the rebuilt cluster"
go run ./examples/serving -target "$ROUTER" -clients 4 -requests 10 -k 4 >"$WORK/load2.log" 2>&1 ||
  fail "load generator against rebuilt cluster"

log "scenario D: hot-spot ingest — automatic live cell split + point migration"
# Restart the router with the online rebalancer enabled. (A router restart
# resets the placement epoch to 1 over the boot geometry — the documented
# non-durable-layout limitation — which is fine here: no migration has
# happened yet.)
kill "$ROUTER_PID" 2>/dev/null || true
for _ in $(seq 50); do kill -0 "$ROUTER_PID" 2>/dev/null || break; sleep 0.1; done
"$BIN/pimkd-router" -addr "127.0.0.1:$HTTP_BASE" \
  -shards "$PEERS" \
  -timeout 2s -probe-interval 100ms -fail-threshold 2 \
  -sweep-interval 500ms -sweep-settle 200ms \
  -rebalance-interval 300ms -rebalance-threshold 1.25 \
  >"$WORK/router2.log" 2>&1 &
PIDS+=($!)
disown
wait_http "$ROUTER/shardz" '"healthy": *3'
wait_synced
curl -fsS "$ROUTER/shardz" | grep -q '"placement_epoch": *1' ||
  fail "fresh router not at placement epoch 1"
log "router restarted with -rebalance-interval 300ms -rebalance-threshold 1.25"

# insert_retry: a 503 during a migration commit window means "not acked,
# retry shortly" (the response carries Retry-After); an ingest client that
# retries must lose nothing.
insert_retry() { # id x y
  for _ in $(seq 40); do
    insert_point "$1" "$2" "$3" && return 0
    sleep 0.2
  done
  return 1
}
hot_xy() { # id → "x y" confined to [0.01, 0.14]^2 — one partition cell
  awk -v i="$1" 'BEGIN{printf "%.4f %.4f", 0.01+(i%25)*0.005, 0.01+(int(i/25)%25)*0.005}'
}

log "scenario D: 600 hot-spot inserts into one corner cell (ids 1000-1599)"
for i in $(seq 1000 1599); do
  read -r x y <<<"$(hot_xy "$i")"
  insert_retry "$i" "$x" "$y" || fail "hot insert $i never acked (retried through migration windows)"
done

log "scenario D: waiting for an automatic split + migration to commit"
wait_http "$ROUTER/statsz" '"rebalances": *[1-9]' 60
wait_http "$ROUTER/shardz" '"placement_epoch": *[2-9]' 30
curl -fsS "$ROUTER/statsz" | grep -q '"migrated_points": *[1-9]' ||
  fail "migration committed but moved no points"
log "split + migration committed (placement epoch advanced)"

log "scenario D: waiting for per-shard drift to settle under the threshold"
DRIFT_DEADLINE=$(($(date +%s) + 90))
while true; do
  # "drift" keys only occur in the per-shard status rows ("drift_threshold"
  # does not match); `|| true` keeps a transient no-match from tripping
  # pipefail — the deadline handles persistent ones.
  worst="$(curl -fsS "$ROUTER/shardz" |
    { grep -o '"drift": *[0-9.]*' || true; } | grep -o '[0-9.]*$' |
    awk 'BEGIN{m=0} {if ($1>m) m=$1} END{print m}')"
  if awk -v w="$worst" 'BEGIN{exit !(w > 0 && w < 1.3)}'; then
    log "worst per-shard drift ratio $worst < 1.3"
    break
  fi
  [ "$(date +%s)" -lt "$DRIFT_DEADLINE" ] || fail "drift never settled under 1.3 (worst $worst)"
  sleep 0.5
done

log "verifying zero lost acked updates after live split + migration"
verify_acked "live split + migration"
code="$(status_of "$ROUTER/knn?p=0.07,0.07&k=650")"
[ "$code" = 200 ] || fail "hot-cell kNN after migration returned $code"

log "PASS: failover served reads and writes, resync and peer rebuild converged, sweep caught and repaired silent divergence, automatic split+migration rebalanced the hot spot, zero lost acked updates"
